package rel

import (
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/history"
	"repro/internal/op"
)

func rows(r Relation) [][]string {
	var out [][]string
	r.Each(func(t Tuple) bool {
		row := make([]string, len(t))
		for i, v := range t {
			row[i] = v.String()
		}
		out = append(out, row)
		return true
	})
	return out
}

func TestValueCompareAndString(t *testing.T) {
	if Compare(Int(1), Int(2)) >= 0 || Compare(Int(2), Int(1)) <= 0 || Compare(Int(2), Int(2)) != 0 {
		t.Fatal("int compare broken")
	}
	if Compare(Int(999), Str("a")) >= 0 || Compare(Str("a"), Int(999)) <= 0 {
		t.Fatal("ints must order before strings")
	}
	if Compare(Str("a"), Str("b")) >= 0 {
		t.Fatal("string compare broken")
	}
	for in, want := range map[Value]string{
		Int(-7):        "-7",
		Str("ww"):      "ww",
		Str("a b"):     `"a b"`,
		Str(""):        `""`,
		Str(`q"uo`):    `"q\"uo"`,
		Str("[1 2]"):   `"[1 2]"`,
		Str("nil"):     "nil",
		Int64(1 << 40): "1099511627776",
	} {
		if got := in.String(); got != want {
			t.Errorf("String(%#v) = %q, want %q", in, got, want)
		}
	}
	if Str("5").Equal(Int(5)) {
		t.Fatal("typed values must not cross-compare equal")
	}
}

func TestOperators(t *testing.T) {
	r := FromRows([]string{"a", "b"}, []Tuple{
		{Int(1), Str("x")},
		{Int(2), Str("y")},
		{Int(1), Str("y")},
		{Int(1), Str("x")},
	})
	if got := rows(r.Eq("a", Int(1))); len(got) != 3 {
		t.Fatalf("Eq: got %v", got)
	}
	if got := rows(r.Select(func(t Tuple) bool { return t[1].Text() == "y" })); len(got) != 2 {
		t.Fatalf("Select: got %v", got)
	}
	if got := rows(r.Project("b")); !reflect.DeepEqual(got, [][]string{{"x"}, {"y"}, {"y"}, {"x"}}) {
		t.Fatalf("Project: got %v", got)
	}
	if got := rows(r.Project("b").Distinct()); !reflect.DeepEqual(got, [][]string{{"x"}, {"y"}}) {
		t.Fatalf("Distinct: got %v", got)
	}
	if got := rows(r.Sort()); !reflect.DeepEqual(got, [][]string{
		{"1", "x"}, {"1", "x"}, {"1", "y"}, {"2", "y"},
	}) {
		t.Fatalf("Sort: got %v", got)
	}
	if got := rows(r.Rename("a", "z").Project("z")); len(got) != 4 {
		t.Fatalf("Rename: got %v", got)
	}
	if got := rows(r.GroupCount([]string{"a"}, "n")); !reflect.DeepEqual(got, [][]string{
		{"1", "3"}, {"2", "1"},
	}) {
		t.Fatalf("GroupCount: got %v", got)
	}
	// Unknown columns degrade to empty, never panic.
	if got := rows(r.Project("nope")); got != nil {
		t.Fatalf("Project unknown: got %v", got)
	}
	if got := rows(r.Eq("nope", Int(1))); got != nil {
		t.Fatalf("Eq unknown: got %v", got)
	}
}

func TestJoinOrderPreserving(t *testing.T) {
	left := FromRows([]string{"k", "l"}, []Tuple{
		{Int(2), Str("b")},
		{Int(1), Str("a")},
		{Int(2), Str("c")},
	})
	right := FromRows([]string{"k", "r"}, []Tuple{
		{Int(1), Str("p")},
		{Int(2), Str("q")},
		{Int(2), Str("s")},
	})
	got := rows(left.Join(right))
	want := [][]string{
		{"2", "b", "q"}, {"2", "b", "s"},
		{"1", "a", "p"},
		{"2", "c", "q"}, {"2", "c", "s"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Join: got %v, want %v", got, want)
	}
	// No shared columns: cross product.
	cross := FromRows([]string{"x"}, []Tuple{{Int(1)}, {Int(2)}}).
		Join(FromRows([]string{"y"}, []Tuple{{Str("a")}}))
	if got := rows(cross); !reflect.DeepEqual(got, [][]string{{"1", "a"}, {"2", "a"}}) {
		t.Fatalf("cross Join: got %v", got)
	}
}

func TestIndexLookupAndAntiJoin(t *testing.T) {
	r := FromRows([]string{"k", "v"}, []Tuple{
		{Str("x"), Int(1)},
		{Str("y"), Int(2)},
		{Str("x"), Int(3)},
	})
	ix := BuildIndex(r, "k")
	if ix.Len() != 2 {
		t.Fatalf("Len = %d", ix.Len())
	}
	if got := ix.Lookup(Str("x")); len(got) != 2 || got[0][1].Num() != 1 || got[1][1].Num() != 3 {
		t.Fatalf("Lookup order: %v", got)
	}
	if !ix.Contains(Str("y")) || ix.Contains(Str("z")) {
		t.Fatal("Contains broken")
	}
	probe := FromRows([]string{"k"}, []Tuple{{Str("z")}, {Str("x")}})
	if got := rows(probe.AntiJoin(ix)); !reflect.DeepEqual(got, [][]string{{"z"}}) {
		t.Fatalf("AntiJoin: got %v", got)
	}
	if got := rows(probe.LookupJoin(ix)); !reflect.DeepEqual(got, [][]string{
		{"x", "1"}, {"x", "3"},
	}) {
		t.Fatalf("LookupJoin: got %v", got)
	}
}

// testHistory is a small compact list-append history with one aborted
// write observed by a later read (G1a-shaped).
func testHistory(t *testing.T) *history.History {
	t.Helper()
	h, err := history.New([]op.Op{
		op.Txn(0, 0, op.OK, op.Append("x", 1)),
		op.Txn(1, 1, op.Fail, op.Append("x", 2)),
		op.Txn(2, 0, op.OK, op.ReadList("x", []int{1, 2})),
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestCatalogRelations(t *testing.T) {
	h := testHistory(t)
	g := graph.New()
	g.AddEdge(0, 2, graph.WR)
	g.AddEdge(0, 2, graph.WW)
	keys := history.NewInterner()
	keys.Intern("x")
	c := NewCatalog(Source{
		History:    h,
		Graph:      g,
		Keys:       keys,
		ListOrders: [][]int{{1, 2}},
	})

	if got := rows(c.Txns()); !reflect.DeepEqual(got, [][]string{
		{"0", "0", "0", "ok"},
		{"1", "1", "1", "fail"},
		{"2", "0", "2", "ok"},
	}) {
		t.Fatalf("txn: %v", got)
	}
	if got := rows(c.Mops()); !reflect.DeepEqual(got, [][]string{
		{"0", "x", "append", "1"},
		{"1", "x", "append", "2"},
		{"2", "x", "r", `"[1 2]"`},
	}) {
		t.Fatalf("mop: %v", got)
	}
	if got := rows(c.Deps()); !reflect.DeepEqual(got, [][]string{
		{"0", "2", "ww"},
		{"0", "2", "wr"},
	}) {
		t.Fatalf("dep: %v", got)
	}
	if got := rows(c.VersionOrder()); !reflect.DeepEqual(got, [][]string{
		{"x", "0", "1"},
		{"x", "1", "2"},
	}) {
		t.Fatalf("version_order: %v", got)
	}
	for _, name := range c.Names() {
		if _, ok := c.Relation(name); !ok {
			t.Fatalf("catalog missing %q", name)
		}
	}
	if _, ok := c.Relation("nope"); ok {
		t.Fatal("unknown relation resolved")
	}
	if _, ok := c.AnomalyAt(0); ok {
		t.Fatal("AnomalyAt on empty anomalies")
	}
}

func TestSubgraphMatchesGraphSubgraph(t *testing.T) {
	g := graph.New()
	g.AddEdge(1, 2, graph.WW)
	g.AddEdge(2, 3, graph.WR)
	g.AddEdge(3, 1, graph.RW)
	g.AddEdge(2, 1, graph.Process)
	g.AddEdge(4, 1, graph.WW)
	nodes := []int{1, 2, 3, 99}

	want := g.Subgraph(nodes)
	got := Subgraph(g, nodes)
	if !reflect.DeepEqual(want.Nodes(), got.Nodes()) {
		t.Fatalf("nodes: want %v, got %v", want.Nodes(), got.Nodes())
	}
	if want.NumEdges() != got.NumEdges() {
		t.Fatalf("edges: want %d, got %d", want.NumEdges(), got.NumEdges())
	}
	for _, a := range want.Nodes() {
		for _, b := range want.Nodes() {
			if want.Label(a, b) != got.Label(a, b) {
				t.Fatalf("label %d->%d: want %v, got %v", a, b, want.Label(a, b), got.Label(a, b))
			}
		}
	}
	// The excluded node's edge must be gone.
	if got.HasNode(4) || got.HasNode(99) {
		t.Fatal("excluded/absent nodes leaked into the subgraph")
	}
}
