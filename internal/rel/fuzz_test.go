package rel

import (
	"strings"
	"testing"
)

// FuzzQueryParse pins the satellite guarantee of docs/QUERY.md: no
// query string — however malformed — panics the parser or the
// evaluator; every rejection is a *ParseError with a position inside
// (or just past) the input; and accepted queries evaluate
// deterministically against a populated catalog.
func FuzzQueryParse(f *testing.F) {
	for _, seed := range []string{
		"",
		"(dep ?a ?b ww)",
		"(dep ?a ?b ww) (cycle ?c _ ?a _)",
		`(mop ?t "key 1" append ?v)`,
		"(txn ?id ?p ?i ok)",
		"(anomaly ?a G-single _ _ ?t) (cycle ?a ?pos ?t ?k)",
		"(dep ?a ?a _)",
		"(dep 0 2 wr)",
		"(version_order x ?pos ?e)",
		"((",
		"(dep",
		`(dep ?a ?b ")`,
		"(dep ? _)",
		"(dep -9999999999999999999999 _ _)",
		"(\x00)",
		strings.Repeat("(dep ?a ?b ww) ", 20),
	} {
		f.Add(seed)
	}
	cat := MapCatalog{
		"dep": FromRows([]string{"from", "to", "kind"}, []Tuple{
			{Int(0), Int(2), Str("wr")},
			{Int(2), Int(0), Str("rw")},
		}),
		"txn": FromRows([]string{"id", "process", "index", "ok"}, []Tuple{
			{Int(0), Int(0), Int(0), Str("ok")},
			{Int(2), Int(0), Int(1), Str("ok")},
		}),
		"mop": FromRows([]string{"txn", "key", "fun", "value"}, []Tuple{
			{Int(0), Str("key 1"), Str("append"), Int(1)},
		}),
		"cycle": FromRows([]string{"id", "pos", "txn", "kind"}, []Tuple{
			{Int(0), Int(0), Int(0), Str("wr")},
			{Int(0), Int(1), Int(2), Str("rw")},
		}),
		"anomaly": FromRows([]string{"id", "code", "severity", "key", "txn"}, []Tuple{
			{Int(0), Str("G-single"), Int(0), Str("x"), Int(0)},
		}),
		"version_order": FromRows([]string{"key", "pos", "value"}, []Tuple{
			{Str("x"), Int(0), Int(1)},
		}),
	}
	f.Fuzz(func(t *testing.T, q string) {
		res, err := Eval(cat, q)
		if err != nil {
			pe, ok := err.(*ParseError)
			if !ok {
				t.Fatalf("Eval(%q): error %T (%v), want *ParseError", q, err, err)
			}
			if pe.Pos < 1 || pe.Pos > len(q)+1 {
				t.Fatalf("Eval(%q): position %d outside 1..%d", q, pe.Pos, len(q)+1)
			}
			return
		}
		var a, b strings.Builder
		if _, err := res.WriteTo(&a); err != nil {
			t.Fatal(err)
		}
		res2, err := Eval(cat, q)
		if err != nil {
			t.Fatalf("Eval(%q): accepted then rejected: %v", q, err)
		}
		if _, err := res2.WriteTo(&b); err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Fatalf("Eval(%q) nondeterministic:\n%q\n%q", q, a.String(), b.String())
		}
	})
}
