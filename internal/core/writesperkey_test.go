package core

import (
	"fmt"
	"testing"

	"repro/internal/consistency"
	"repro/internal/gen"
	"repro/internal/memdb"
)

// The paper's §7 workload dimension: "We performed anywhere from one to
// 1024 writes per object; fewer writes per object stresses codepaths
// involved in the creation of fresh database objects, and more writes
// per object allows the detection of anomalies over longer time
// periods." These tests sweep that dimension.

func checkAtWidth(t *testing.T, width int, iso memdb.Isolation, f memdb.Faults, seed int64) *CheckResult {
	t.Helper()
	g := gen.New(gen.Config{ActiveKeys: 5, MaxWritesPerKey: width}, seed)
	h := memdb.Run(memdb.RunConfig{
		Clients: 10, Txns: 800, Isolation: iso, Faults: f, Source: g, Seed: seed,
	})
	opts := OptsFor(ListAppend, consistency.SnapshotIsolation)
	opts.DetectLostUpdates = true
	return Check(h, opts)
}

// TestSoundnessAcrossKeyWidths: clean serializable histories stay clean
// at every writes-per-key setting, including the fresh-object-heavy
// width of 1.
func TestSoundnessAcrossKeyWidths(t *testing.T) {
	for _, width := range []int{1, 2, 10, 100, 1024} {
		width := width
		t.Run(fmt.Sprintf("width=%d", width), func(t *testing.T) {
			for seed := int64(0); seed < 5; seed++ {
				g := gen.New(gen.Config{ActiveKeys: 5, MaxWritesPerKey: width}, seed)
				h := memdb.Run(memdb.RunConfig{
					Clients: 10, Txns: 500, Isolation: memdb.StrictSerializable,
					Source: g, Seed: seed,
				})
				r := Check(h, OptsFor(ListAppend, consistency.StrictSerializable))
				if len(r.Anomalies) != 0 {
					t.Fatalf("seed %d: false positives at width %d: %v\n%s",
						seed, width, r.AnomalyTypes(), r.Anomalies[0].Explanation)
				}
			}
		})
	}
}

// TestRetryDetectionAcrossKeyWidths: the TiDB retry fault is detectable
// from width 10 up — wide keys catch it through long version histories.
// (At widths 1-2 keys retire before a conflicting reader can observe the
// lost element, so detection probability drops; the paper's narrow
// widths stress object creation, not detection power.)
func TestRetryDetectionAcrossKeyWidths(t *testing.T) {
	faults := memdb.Faults{RetryStompProb: 0.4, RetryRebaseProb: 1}
	for _, width := range []int{10, 100, 1024} {
		width := width
		t.Run(fmt.Sprintf("width=%d", width), func(t *testing.T) {
			detected := false
			for seed := int64(0); seed < 6 && !detected; seed++ {
				r := checkAtWidth(t, width, memdb.SnapshotIsolation, faults, seed)
				if !r.Valid {
					detected = true
				}
			}
			if !detected {
				t.Errorf("retry fault invisible at width %d across 6 seeds", width)
			}
		})
	}
}

// TestSingleWritePerKey: at width 1 every object receives exactly one
// append, so version histories have length one and cycle inference is
// minimal — but structural checks still work.
func TestSingleWritePerKey(t *testing.T) {
	g := gen.New(gen.Config{ActiveKeys: 5, MaxWritesPerKey: 1}, 3)
	h := memdb.Run(memdb.RunConfig{
		Clients: 10, Txns: 500, Isolation: memdb.ReadUncommitted,
		Source: g, Seed: 3, AbortProb: 0.3,
	})
	r := Check(h, OptsFor(ListAppend, consistency.ReadCommitted))
	// Read-uncommitted with unrolled-back aborts must still surface G1a
	// even when each key sees a single append.
	if r.Valid {
		t.Error("RU engine with aborts passed read committed at width 1")
	}
}
