package core

import (
	"repro/internal/history"
	"repro/internal/rel"
)

// Relations derives the relational catalog of this check over h, the
// history the check analyzed. The catalog is lazy — each relation is a
// streaming view over the result's graph, anomaly list, and inferred
// version orders — so building it costs nothing until a query runs.
// Every query surface (elle -query, elled's query endpoint, ellectl
// query) evaluates against this catalog, which is what makes their
// outputs byte-identical for the same query.
func (r *CheckResult) Relations(h *history.History) *rel.Catalog {
	src := rel.Source{
		History:   h,
		Graph:     r.Graph,
		Anomalies: r.Anomalies,
	}
	if e := r.Explainer; e != nil {
		src.Keys = e.Keys
		src.ListOrders = e.ListOrders
		src.RegOrders = e.RegOrders
	}
	return rel.NewCatalog(src)
}

// Query parses and evaluates one pattern query (docs/QUERY.md) against
// the check's catalog. Errors are *rel.ParseError values carrying the
// 1-based input position of the fault.
func (r *CheckResult) Query(h *history.History, q string) (*rel.Result, error) {
	return rel.Eval(r.Relations(h), q)
}
