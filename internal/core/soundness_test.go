package core

import (
	"testing"

	"repro/internal/anomaly"
	"repro/internal/consistency"
	"repro/internal/gen"
	"repro/internal/memdb"
)

// These integration tests exercise the paper's Theorem 1 (soundness) and
// §7's effectiveness claims end-to-end: histories generated against the
// in-memory database at a given isolation level must check clean at that
// level, and each injected bug family must surface its case-study anomaly
// signature.

func runList(seed int64, clients, txns int, iso memdb.Isolation, f memdb.Faults, abortProb, infoProb float64) *CheckResult {
	g := gen.New(gen.Config{ActiveKeys: 5, MaxWritesPerKey: 40, MinOps: 1, MaxOps: 5}, seed)
	h := memdb.Run(memdb.RunConfig{
		Clients: clients, Txns: txns, Isolation: iso, Faults: f,
		Source: g, Seed: seed, AbortProb: abortProb, InfoProb: infoProb,
	})
	model := consistency.Serializable
	switch iso {
	case memdb.StrictSerializable:
		model = consistency.StrictSerializable
	case memdb.SnapshotIsolation:
		model = consistency.SnapshotIsolation
	case memdb.ReadCommitted:
		model = consistency.ReadCommitted
	case memdb.ReadUncommitted:
		model = consistency.ReadUncommitted
	}
	return Check(h, OptsFor(ListAppend, model))
}

// TestSoundnessSerializable: across many seeds, a faultless serializable
// database never triggers any anomaly — Elle has no false positives.
func TestSoundnessSerializable(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		r := runList(seed, 8, 300, memdb.Serializable, memdb.Faults{}, 0, 0)
		if len(r.Anomalies) != 0 {
			t.Fatalf("seed %d: false positives on serializable history:\n%s\n%s",
				seed, r.Summary(), r.Anomalies[0].Explanation)
		}
	}
}

// TestSoundnessStrictSerializable: the same holds with realtime and
// session edges enabled, and with aborts and indeterminate results in the
// mix.
func TestSoundnessStrictSerializable(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		r := runList(seed, 10, 300, memdb.StrictSerializable, memdb.Faults{}, 0.1, 0.05)
		if len(r.Anomalies) != 0 {
			t.Fatalf("seed %d: false positives on strict-serializable history:\n%s\n%s",
				seed, r.Summary(), r.Anomalies[0].Explanation)
		}
	}
}

// TestSoundnessSnapshotIsolation: a faultless SI database may exhibit
// write skew (G2-item), which SI permits — but never G-single, G1, G0, or
// non-cycle anomalies. The SI check must pass.
func TestSoundnessSnapshotIsolation(t *testing.T) {
	sawWriteSkew := false
	for seed := int64(0); seed < 40; seed++ {
		r := runList(seed, 10, 400, memdb.SnapshotIsolation, memdb.Faults{}, 0, 0)
		if !r.Valid {
			t.Fatalf("seed %d: SI database failed its own level:\n%s\n%s",
				seed, r.Summary(), r.Anomalies[0].Explanation)
		}
		for _, typ := range r.AnomalyTypes() {
			switch typ {
			case anomaly.G2Item:
				sawWriteSkew = true
			default:
				t.Fatalf("seed %d: SI database produced %s", seed, typ)
			}
		}
	}
	if !sawWriteSkew {
		t.Error("no write skew in 40 SI runs; contention too low to be a meaningful test")
	}
}

// TestEffectivenessReadCommitted: read committed's unvalidated
// read-modify-writes lose updates, which Elle reports (as the paper notes
// for TiDB, lost updates manifest as inconsistent observations implying
// aborted reads, alongside cycles). Serializability must be refuted.
func TestEffectivenessReadCommitted(t *testing.T) {
	refuted := false
	for seed := int64(0); seed < 10; seed++ {
		r := runList(seed, 10, 400, memdb.ReadCommitted, memdb.Faults{}, 0, 0)
		if !consistency.Holds(consistency.Serializable, r.AnomalyTypes()) {
			refuted = true
			break
		}
	}
	if !refuted {
		t.Fatal("read-committed database passed serializability in all 10 runs")
	}
}

// TestEffectivenessReadUncommitted: immediate visibility plus aborts that
// fail to roll back yield aborted reads (G1a) and dirty updates.
func TestEffectivenessReadUncommitted(t *testing.T) {
	var types []anomaly.Type
	for seed := int64(0); seed < 10; seed++ {
		r := runList(seed, 10, 300, memdb.ReadUncommitted, memdb.Faults{}, 0.3, 0)
		types = append(types, r.AnomalyTypes()...)
	}
	has := func(want anomaly.Type) bool {
		for _, typ := range types {
			if typ == want {
				return true
			}
		}
		return false
	}
	if !has(anomaly.G1a) {
		t.Errorf("no G1a across RU runs; found %v", types)
	}
	if !has(anomaly.DirtyUpdate) {
		t.Errorf("no dirty updates across RU runs; found %v", types)
	}
}

// TestSoundnessRegisterWorkload: a faultless strict-serializable database
// under the register workload checks clean, including per-key
// linearizability inference.
func TestSoundnessRegisterWorkload(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		g := gen.New(gen.Config{Workload: gen.Register, ActiveKeys: 5, MaxWritesPerKey: 40}, seed)
		h := memdb.Run(memdb.RunConfig{
			Clients: 8, Txns: 300, Isolation: memdb.StrictSerializable,
			Source: g, Seed: seed, Register: true,
		})
		r := Check(h, OptsFor(Register, consistency.StrictSerializable))
		if len(r.Anomalies) != 0 {
			t.Fatalf("seed %d: register false positives:\n%s\n%s",
				seed, r.Summary(), r.Anomalies[0].Explanation)
		}
	}
}

// TestIndeterminateResultsStaySound: heavy info/abort injection must not
// create false positives on a serializable engine.
func TestIndeterminateResultsStaySound(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		r := runList(seed, 10, 300, memdb.StrictSerializable, memdb.Faults{}, 0.2, 0.3)
		if len(r.Anomalies) != 0 {
			t.Fatalf("seed %d: info-heavy run has false positives:\n%s\n%s",
				seed, r.Summary(), r.Anomalies[0].Explanation)
		}
	}
}
