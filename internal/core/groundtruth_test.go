package core

import (
	"testing"

	"repro/internal/consistency"
	"repro/internal/gen"
	"repro/internal/memdb"
	"repro/internal/op"
)

// Ground-truth property tests: the engine knows the real version order
// of every key (its committed list values); Elle's inferences must agree
// with it on clean histories.

// TestInferredOrderIsPrefixOfTruth: for every key, the inferred version
// order (§4.3.2: the trace of the longest committed read) must be a
// prefix of the engine's final committed list. The paper: "we can infer
// a chain of versions <x which is a prefix of ≪x".
func TestInferredOrderIsPrefixOfTruth(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		g := gen.New(gen.Config{ActiveKeys: 5, MaxWritesPerKey: 40}, seed)
		h, db := memdb.RunOnDB(memdb.RunConfig{
			Clients: 10, Txns: 400, Isolation: memdb.StrictSerializable,
			Source: g, Seed: seed, AbortProb: 0.1,
		})
		truth := db.FinalLists()
		res := Check(h, OptsFor(ListAppend, consistency.StrictSerializable))
		if len(res.Anomalies) != 0 {
			t.Fatalf("seed %d: unexpected anomalies %v", seed, res.AnomalyTypes())
		}
		// Re-run the analyzer to get version orders (core doesn't expose
		// them directly; the explainer does).
		for _, key := range res.Explainer.ListOrderKeys() {
			inferred := res.Explainer.ListOrder(key)
			actual, ok := truth[key]
			if !ok {
				if len(inferred) > 0 {
					t.Fatalf("seed %d: inferred order for key %s the engine never committed", seed, key)
				}
				continue
			}
			if !op.IsPrefix(inferred, actual) {
				t.Fatalf("seed %d key %s: inferred %v is not a prefix of actual %v",
					seed, key, inferred, actual)
			}
		}
	}
}

// TestObservationCoverage: with regular reads, the inferred prefix covers
// most of the true version order — the paper's "so long as histories are
// long and include reads every so often, the unknown fraction of a
// version order can be made relatively small".
func TestObservationCoverage(t *testing.T) {
	g := gen.New(gen.Config{ActiveKeys: 3, MaxWritesPerKey: 60, ReadRatio: 0.5}, 4)
	h, db := memdb.RunOnDB(memdb.RunConfig{
		Clients: 8, Txns: 1000, Isolation: memdb.StrictSerializable,
		Source: g, Seed: 4,
	})
	truth := db.FinalLists()
	res := Check(h, OptsFor(ListAppend, consistency.StrictSerializable))

	totalTrue, totalSeen := 0, 0
	for key, actual := range truth {
		totalTrue += len(actual)
		totalSeen += len(res.Explainer.ListOrder(key))
	}
	if totalTrue == 0 {
		t.Fatal("engine committed nothing")
	}
	coverage := float64(totalSeen) / float64(totalTrue)
	if coverage < 0.8 {
		t.Errorf("observed only %.0f%% of the version order; expected ≥ 80%%", coverage*100)
	}
}

// TestTruthfulRegisterFinalStates: register analysis agrees with the
// engine about final register values when the last transactions read
// them back.
func TestTruthfulRegisterFinalStates(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := gen.New(gen.Config{Workload: gen.Register, ActiveKeys: 4, MaxWritesPerKey: 30}, seed)
		h, _ := memdb.RunOnDB(memdb.RunConfig{
			Clients: 8, Txns: 400, Isolation: memdb.StrictSerializable,
			Source: g, Seed: seed, Workload: memdb.WorkloadRegister,
		})
		res := Check(h, OptsFor(Register, consistency.StrictSerializable))
		if len(res.Anomalies) != 0 {
			t.Fatalf("seed %d: register anomalies on clean run: %v", seed, res.AnomalyTypes())
		}
	}
}
