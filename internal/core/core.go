// Package core is the public face of the Elle checker: it accepts an
// observed history and an expected consistency model, runs the
// workload-appropriate dependency inference, augments the graph with
// process and real-time orders where the model warrants them, searches for
// cycles, classifies every anomaly, and reports which isolation models the
// observation rules out — each with a human-readable explanation in the
// style of the paper's Figure 2.
package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/anomaly"
	"repro/internal/consistency"
	"repro/internal/explain"
	"repro/internal/graph"
	"repro/internal/history"
	"repro/internal/par"
	"repro/internal/txngraph"
	"repro/internal/workload"

	// Populate the workload registry with every built-in analyzer.
	_ "repro/internal/workload/all"
)

// Workload selects the dependency-inference strategy by registered
// name; see the workload package for the registry.
type Workload = workload.Name

// The built-in workloads.
const (
	// ListAppend analyzes histories over append-only lists — the paper's
	// traceable, recoverable workload, and its most precise analysis.
	ListAppend = workload.ListAppend
	// Register analyzes histories over read-write registers with the
	// partial version-order inference of §5.2.
	Register = workload.RWRegister
	// SetAdd analyzes histories over grow-only sets: exact wr and rw
	// dependencies, but no write-write inference (§3).
	SetAdd = workload.SetAdd
	// Counter analyzes histories over increment-only counters: bounds
	// and session-monotonicity checks only (§3).
	Counter = workload.Counter
	// Bank analyzes transfer histories over fixed accounts with a
	// total-balance invariant.
	Bank = workload.Bank
	// KAtomic analyzes single-object register histories for atomicity
	// and k-atomicity in real time — the one workload checked by
	// interval analysis rather than dependency inference.
	KAtomic = workload.KAtomic
)

// Opts configures a check.
type Opts struct {
	// Workload selects the analyzer by registered name; default
	// ListAppend. Check panics on a name no analyzer registered under.
	Workload Workload
	// Model is the consistency model the database under test claims.
	// Default: strict-serializable.
	Model consistency.Model
	// ProcessEdges merges per-process session order into the dependency
	// graph before cycle search.
	ProcessEdges bool
	// RealtimeEdges merges the real-time precedence order into the
	// dependency graph before cycle search.
	RealtimeEdges bool
	// TimestampEdges merges the database's own claimed transaction
	// timestamps (carried in Op.Time, §5.1) into the dependency graph.
	// Only meaningful when the system under test exposes start/commit
	// timestamps; off by default.
	TimestampEdges bool
	// Opts carries the analyzer options shared by every workload —
	// inference rules, workload parameters, and Parallelism, which caps
	// the worker pools used throughout the check: per-key dependency
	// inference, per-transaction anomaly checks, per-SCC cycle search
	// (budgeted across the four concurrent searches), and explanation
	// rendering. Values <= 0 mean one worker per CPU
	// (runtime.GOMAXPROCS(0)), the default; 1 runs the whole pipeline
	// sequentially on the calling goroutine. When Parallelism > 1 the
	// process/real-time/timestamp ordering graphs also build
	// concurrently with inference, briefly adding up to three more
	// goroutines. Results are byte-identical at every setting.
	workload.Opts
}

// OptsFor returns the options the paper's methodology implies for
// checking workload w against model m: real-time edges (and lost-update
// detection) for strict models, session edges for strong-session and
// stricter models, and every register inference rule for register
// workloads.
func OptsFor(w Workload, m consistency.Model) Opts {
	strict := m == consistency.StrictSerializable
	session := strict ||
		m == consistency.StrongSessionSerial ||
		m == consistency.StrongSessionSI
	wo := workload.DefaultOpts()
	wo.LinearizableKeys = strict
	wo.DetectLostUpdates = strict
	return Opts{
		Workload:      w,
		Model:         m,
		ProcessEdges:  session,
		RealtimeEdges: strict,
		Opts:          wo,
	}
}

func (o Opts) withDefaults() Opts {
	if o.Model == "" {
		o.Model = consistency.StrictSerializable
	}
	if o.Workload == "" {
		o.Workload = ListAppend
	}
	return o
}

// Stats summarizes the analysis for reporting and benchmarks.
type Stats struct {
	Ops       int // completion ops analyzed
	Nodes     int // transactions in the dependency graph
	Edges     int // distinct dependency adjacencies
	SCCs      int // strongly connected components with ≥ 2 transactions
	ExtraKind graph.KindSet
}

// CheckResult is the outcome of a check.
type CheckResult struct {
	// Valid reports whether the observation is consistent with Expected:
	// no detected anomaly rules it out.
	Valid bool
	// Expected is the model the check was performed against.
	Expected consistency.Model
	// Anomalies lists every detected anomaly, structural first, then
	// dirty phenomena, then cycles, each with an explanation.
	Anomalies []anomaly.Anomaly
	// Violated lists every model the detected anomalies rule out.
	Violated []consistency.Model
	// Strongest lists the maximal models the observation may satisfy.
	Strongest []consistency.Model
	// Graph is the final dependency graph searched for cycles.
	Graph *graph.Graph
	// Explainer renders additional cycles against this analysis.
	Explainer *explain.Explainer
	Stats     Stats
}

// AnomalyTypes returns the distinct anomaly types found, sorted.
func (r *CheckResult) AnomalyTypes() []anomaly.Type {
	set := map[anomaly.Type]bool{}
	for _, a := range r.Anomalies {
		set[a.Type] = true
	}
	out := make([]anomaly.Type, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HasAnomaly reports whether any anomaly of type t was found.
func (r *CheckResult) HasAnomaly(t anomaly.Type) bool {
	for _, a := range r.Anomalies {
		if a.Type == t {
			return true
		}
	}
	return false
}

// Summary renders a short multi-line report.
func (r *CheckResult) Summary() string {
	var b strings.Builder
	if r.Valid {
		fmt.Fprintf(&b, "OK: no anomalies rule out %s\n", r.Expected)
	} else {
		fmt.Fprintf(&b, "INVALID under %s\n", r.Expected)
	}
	fmt.Fprintf(&b, "  %d ops, %d nodes, %d edges, %d cyclic components\n",
		r.Stats.Ops, r.Stats.Nodes, r.Stats.Edges, r.Stats.SCCs)
	if len(r.Anomalies) > 0 {
		counts := map[anomaly.Type]int{}
		for _, a := range r.Anomalies {
			counts[a.Type]++
		}
		b.WriteString("  anomalies:")
		for _, t := range r.AnomalyTypes() {
			fmt.Fprintf(&b, " %s×%d", t, counts[t])
		}
		b.WriteByte('\n')
		fmt.Fprintf(&b, "  may satisfy: %s\n", joinModels(r.Strongest))
	}
	return b.String()
}

func joinModels(ms []consistency.Model) string {
	if len(ms) == 0 {
		return "(nothing)"
	}
	parts := make([]string, len(ms))
	for i, m := range ms {
		parts[i] = string(m)
	}
	return strings.Join(parts, ", ")
}

// Check analyzes h under opts. It never modifies h.
//
// The pipeline is parallel end to end (see Opts.Parallelism): the extra
// ordering graphs build concurrently with dependency inference, inference
// itself shards per key and per transaction inside the workload analyzer,
// cycle search fans out per strongly connected component, and every stage
// merges its results in a deterministic order, so two checks of the same
// history produce identical reports at any parallelism level.
func Check(h *history.History, opts Opts) *CheckResult {
	opts = opts.withDefaults()

	// The process, real-time, and timestamp orders depend only on the
	// history, not on inference, so they build while the analyzer runs.
	orders := startOrderGraphs(h, opts)

	// The analyzer comes from the registry: core neither knows nor
	// cares which datatype it is checking. Every analyzer receives the
	// same shared options (including Parallelism) and returns a graph,
	// its non-cycle anomalies, and an explainer.
	info := lookup(opts.Workload)
	an := info.Analyzer.Analyze(h, opts.Opts)
	return classify(h, opts, an, orders)
}

// lookup resolves a workload name or panics with the registered set; a
// bad name is a programming error at this layer (the CLIs validate).
func lookup(w Workload) workload.Info {
	info, ok := workload.Lookup(string(w))
	if !ok {
		panic(fmt.Sprintf("core: unknown workload %q (registered: %s)",
			w, workload.NameList()))
	}
	return info
}

// orderGraphs carries the in-flight builds of the §5.1 ordering graphs;
// wait joins them.
type orderGraphs struct {
	proc, rt, ts *graph.Graph
	wg           sync.WaitGroup
}

// startOrderGraphs kicks off the process/real-time/timestamp graph
// builds opts asks for, concurrently when the parallelism budget allows
// it, so they overlap with dependency inference (batch) or with the
// streaming session's own finish work.
func startOrderGraphs(h *history.History, opts Opts) *orderGraphs {
	o := &orderGraphs{}
	build := func(dst **graph.Graph, f func(*history.History) *graph.Graph) {
		if par.Procs(opts.Parallelism) == 1 {
			*dst = f(h)
			return
		}
		o.wg.Add(1)
		go func() {
			defer o.wg.Done()
			*dst = f(h)
		}()
	}
	if opts.ProcessEdges {
		build(&o.proc, txngraph.ProcessGraph)
	}
	if opts.RealtimeEdges {
		build(&o.rt, txngraph.RealtimeGraph)
	}
	if opts.TimestampEdges {
		build(&o.ts, txngraph.TimestampGraph)
	}
	return o
}

// classify is the back half of a check, shared by the batch Check and
// the streaming Stream.Finish: merge the extra ordering graphs into the
// inferred dependency graph, search for anomalous cycles, classify
// every anomaly, and evaluate the consistency lattice.
func classify(h *history.History, opts Opts, an workload.Analysis, orders *orderGraphs) *CheckResult {
	p := opts.Parallelism
	g, anoms, expl := an.Graph, an.Anomalies, an.Explainer

	orders.wg.Wait()
	var extra graph.KindSet
	if opts.ProcessEdges {
		g.Merge(orders.proc)
		extra |= graph.Process.Mask()
	}
	if opts.RealtimeEdges {
		g.Merge(orders.rt)
		extra |= graph.Realtime.Mask()
	}
	if opts.TimestampEdges {
		g.Merge(orders.ts)
		extra |= graph.Timestamp.Mask()
	}

	cycles := g.AnomalousCycles(extra, p)
	anoms = append(anoms, par.Map(p, len(cycles), func(i int) anomaly.Anomaly {
		c := cycles[i]
		return anomaly.Anomaly{
			Type:        anomaly.CycleType(c),
			Cycle:       c,
			Explanation: expl.Cycle(c),
		}
	})...)
	sortAnomalies(anoms)

	types := make([]anomaly.Type, len(anoms))
	for i, a := range anoms {
		types[i] = a.Type
	}
	violated := consistency.Violated(types)
	res := &CheckResult{
		Valid:     consistency.Holds(opts.Model, types),
		Expected:  opts.Model,
		Anomalies: anoms,
		Violated:  violated,
		Strongest: consistency.Strongest(types),
		Graph:     g,
		Explainer: expl,
		Stats: Stats{
			Ops:       len(h.Completions()),
			Nodes:     g.NumNodes(),
			Edges:     g.NumEdges(),
			SCCs:      len(g.SCCs(graph.KSDep | extra)),
			ExtraKind: extra,
		},
	}
	return res
}

func sortAnomalies(as []anomaly.Anomaly) {
	sort.SliceStable(as, func(i, j int) bool {
		if as[i].Type.Severity() != as[j].Type.Severity() {
			return as[i].Type.Severity() > as[j].Type.Severity()
		}
		return as[i].Type < as[j].Type
	})
}
