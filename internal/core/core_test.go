package core

import (
	"strings"
	"testing"

	"repro/internal/anomaly"
	"repro/internal/consistency"
	"repro/internal/history"
	"repro/internal/op"
)

func TestCleanHistoryValid(t *testing.T) {
	h := history.MustNew([]op.Op{
		op.Txn(0, 0, op.OK, op.Append("x", 1)),
		op.Txn(1, 0, op.OK, op.Append("x", 2)),
		op.Txn(2, 0, op.OK, op.ReadList("x", []int{1, 2})),
	})
	r := Check(h, OptsFor(ListAppend, consistency.StrictSerializable))
	if !r.Valid {
		t.Fatalf("clean history invalid: %s", r.Summary())
	}
	if len(r.Anomalies) != 0 {
		t.Fatalf("anomalies: %v", r.Anomalies)
	}
	if len(r.Strongest) != 1 || r.Strongest[0] != consistency.StrictSerializable {
		t.Errorf("Strongest = %v", r.Strongest)
	}
}

// TestFigure2GSingle builds the paper's Figure 2 history (augmented with
// the setup writes its elided transactions performed) and checks that the
// checker finds a G-single cycle and renders a Figure 2-style explanation.
//
//	T1 = append(250, 10), r(253, [1 3 4]), r(255, [2 3 4 5]), append(256, 3)
//	T2 = append(255, 8), r(253, [1 3 4])
//	T3 = append(256, 4), r(255, [2 3 4 5 8]), r(256, [1 2 4]), r(253, [1 3 4])
func TestFigure2GSingle(t *testing.T) {
	ops := []op.Op{
		// Setup writers for the elements the paper's history observes.
		op.Txn(0, 0, op.OK, op.Append("253", 1), op.Append("253", 3), op.Append("253", 4)),
		op.Txn(1, 0, op.OK, op.Append("255", 2), op.Append("255", 3), op.Append("255", 4), op.Append("255", 5)),
		op.Txn(2, 0, op.OK, op.Append("256", 1), op.Append("256", 2)),
		// The paper's transactions.
		op.Txn(10, 1, op.OK,
			op.Append("250", 10), op.ReadList("253", []int{1, 3, 4}),
			op.ReadList("255", []int{2, 3, 4, 5}), op.Append("256", 3)),
		op.Txn(11, 2, op.OK,
			op.Append("255", 8), op.ReadList("253", []int{1, 3, 4})),
		op.Txn(12, 3, op.OK,
			op.Append("256", 4), op.ReadList("255", []int{2, 3, 4, 5, 8}),
			op.ReadList("256", []int{1, 2, 4}), op.ReadList("253", []int{1, 3, 4})),
		// A later read establishing that T1's append of 3 to 256 followed
		// T3's append of 4 (the ww edge closing the cycle).
		op.Txn(13, 4, op.OK, op.ReadList("256", []int{1, 2, 4, 3})),
	}
	h := history.MustNew(ops)
	r := Check(h, Opts{Workload: ListAppend, Model: consistency.Serializable})
	if r.Valid {
		t.Fatalf("Figure 2 history checked as serializable:\n%s", r.Summary())
	}
	if !r.HasAnomaly(anomaly.GSingle) {
		t.Fatalf("expected G-single, found %v", r.AnomalyTypes())
	}
	var expl string
	for _, a := range r.Anomalies {
		if a.Type == anomaly.GSingle {
			expl = a.Explanation
		}
	}
	// The explanation must mention the three dependencies of Figure 2.
	for _, want := range []string{
		"did not observe", // T1 < T2: rw, missed append of 8 to 255
		"observed",        // T2 < T3: wr, T3 saw 8
		"contradiction",
	} {
		if !strings.Contains(expl, want) {
			t.Errorf("explanation missing %q:\n%s", want, expl)
		}
	}
}

func TestRegisterWorkloadDispatch(t *testing.T) {
	h := history.MustNew([]op.Op{
		op.Txn(1, 1, op.OK, op.ReadReg("2432", 10), op.ReadNil("2434")),
		op.Txn(2, 2, op.OK, op.Write("2434", 10)),
		op.Txn(3, 3, op.OK, op.Write("2432", 10), op.ReadReg("2434", 10)),
	})
	opts := OptsFor(Register, consistency.SnapshotIsolation)
	r := Check(h, opts)
	if r.Valid {
		t.Fatal("Dgraph read-skew history checked as SI")
	}
	if !r.HasAnomaly(anomaly.GSingle) {
		t.Fatalf("expected G-single, found %v", r.AnomalyTypes())
	}
}

// TestLongForkTaggedAsG2: the paper's long-fork example (§1) is detected,
// tagged as G2 (its Future Work notes it is not specialized further).
func TestLongForkTaggedAsG2(t *testing.T) {
	h := history.MustNew([]op.Op{
		op.Txn(0, 0, op.OK, op.Append("x", 1)),
		op.Txn(1, 1, op.OK, op.Append("y", 1)),
		// Reader A sees x but not y; reader B sees y but not x.
		op.Txn(2, 2, op.OK, op.ReadList("x", []int{1}), op.ReadList("y", []int{})),
		op.Txn(3, 3, op.OK, op.ReadList("y", []int{1}), op.ReadList("x", []int{})),
	})
	r := Check(h, Opts{Workload: ListAppend, Model: consistency.Serializable})
	if r.Valid {
		t.Fatal("long fork checked as serializable")
	}
	if !r.HasAnomaly(anomaly.G2Item) {
		t.Fatalf("expected G2-item, found %v", r.AnomalyTypes())
	}
}

// TestProcessCycleDetection: a single process observing, then
// un-observing, a write violates strong-session models.
func TestProcessCycleDetection(t *testing.T) {
	h := history.MustNew([]op.Op{
		op.Txn(0, 0, op.OK, op.Append("x", 1)),
		// Process 1 reads [1], then later reads [].
		op.Txn(1, 1, op.OK, op.ReadList("x", []int{1})),
		op.Txn(2, 1, op.OK, op.ReadList("x", []int{})),
	})
	r := Check(h, OptsFor(ListAppend, consistency.StrongSessionSI))
	if r.Valid {
		t.Fatalf("monotonicity violation checked as strong-session SI:\n%s", r.Summary())
	}
	types := r.AnomalyTypes()
	found := false
	for _, typ := range types {
		if strings.HasSuffix(string(typ), "-process") || strings.HasSuffix(string(typ), "-realtime") {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected a session/realtime cycle, found %v", types)
	}
	// Without session edges, the same history passes SI.
	r2 := Check(h, OptsFor(ListAppend, consistency.SnapshotIsolation))
	if !r2.Valid {
		t.Fatalf("history should pass plain SI: %v", r2.AnomalyTypes())
	}
}

// TestRealtimeCycleDetection: a stale read that is legal under
// serializability but not under strict serializability.
func TestRealtimeCycleDetection(t *testing.T) {
	b := history.NewBuilder()
	m0 := []op.Mop{op.Append("x", 1)}
	b.Invoke(0, m0)
	b.Complete(0, op.OK, m0)
	m1 := []op.Mop{op.ReadList("x", []int{})}
	b.Invoke(1, []op.Mop{op.Read("x")})
	b.Complete(1, op.OK, m1)
	m2 := []op.Mop{op.ReadList("x", []int{1})}
	b.Invoke(2, []op.Mop{op.Read("x")})
	b.Complete(2, op.OK, m2)
	h := b.MustHistory()

	r := Check(h, OptsFor(ListAppend, consistency.StrictSerializable))
	if r.Valid {
		t.Fatalf("stale read checked as strict-serializable:\n%s", r.Summary())
	}
	// The anomaly must be a realtime variant: the plain dependency graph
	// is acyclic.
	foundRT := false
	for _, typ := range r.AnomalyTypes() {
		if strings.HasSuffix(string(typ), "-realtime") {
			foundRT = true
		}
	}
	if !foundRT {
		t.Fatalf("expected realtime cycle, found %v", r.AnomalyTypes())
	}
	// The same history is fine under plain serializability.
	r2 := Check(h, OptsFor(ListAppend, consistency.Serializable))
	if !r2.Valid {
		t.Fatalf("history should pass serializable: %v", r2.AnomalyTypes())
	}
}

func TestSummaryRendering(t *testing.T) {
	h := history.MustNew([]op.Op{
		op.Txn(0, 0, op.Fail, op.Append("x", 1)),
		op.Txn(1, 1, op.OK, op.ReadList("x", []int{1})),
	})
	r := Check(h, Opts{Workload: ListAppend, Model: consistency.ReadCommitted})
	if r.Valid {
		t.Fatal("G1a history checked as read committed")
	}
	s := r.Summary()
	if !strings.Contains(s, "INVALID") || !strings.Contains(s, "G1a") {
		t.Errorf("summary missing content:\n%s", s)
	}
	if !strings.Contains(s, "may satisfy") {
		t.Errorf("summary missing model report:\n%s", s)
	}
}

func TestAnomalySortingStructuralFirst(t *testing.T) {
	h := history.MustNew([]op.Op{
		// Garbage read (structural) and a G1a (dirty).
		op.Txn(0, 0, op.Fail, op.Append("x", 1)),
		op.Txn(1, 1, op.OK, op.ReadList("x", []int{1}), op.ReadList("y", []int{9})),
	})
	r := Check(h, Opts{Workload: ListAppend})
	if len(r.Anomalies) < 2 {
		t.Fatalf("expected ≥ 2 anomalies, got %v", r.AnomalyTypes())
	}
	if r.Anomalies[0].Type.Severity() < r.Anomalies[1].Type.Severity() {
		t.Error("anomalies not sorted most-severe first")
	}
}

func TestOptsForModels(t *testing.T) {
	o := OptsFor(ListAppend, consistency.StrictSerializable)
	if !o.RealtimeEdges || !o.ProcessEdges || !o.DetectLostUpdates {
		t.Error("strict opts should enable realtime, process, lost updates")
	}
	o = OptsFor(ListAppend, consistency.StrongSessionSI)
	if o.RealtimeEdges || !o.ProcessEdges {
		t.Error("strong-session opts should enable process only")
	}
	o = OptsFor(ListAppend, consistency.Serializable)
	if o.RealtimeEdges || o.ProcessEdges {
		t.Error("serializable opts should use pure dependency edges")
	}
	o = OptsFor(Register, consistency.StrictSerializable)
	if !o.LinearizableKeys {
		t.Error("strict register opts should enable linearizable keys")
	}
}

func TestCheckDefaultsToStrictSerializable(t *testing.T) {
	h := history.MustNew([]op.Op{op.Txn(0, 0, op.OK, op.Append("x", 1))})
	r := Check(h, Opts{})
	if r.Expected != consistency.StrictSerializable {
		t.Errorf("default model = %s", r.Expected)
	}
}

func TestWorkloadString(t *testing.T) {
	if ListAppend.String() != "list-append" || Register.String() != "rw-register" {
		t.Error("workload names wrong")
	}
}
