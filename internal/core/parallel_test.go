package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/consistency"
	"repro/internal/gen"
	"repro/internal/memdb"
	"repro/internal/workload"
)

// The parallel pipeline's contract is byte-identical output at every
// parallelism level: same verdict, same anomalies in the same order with
// the same explanations and cycle witnesses, same stats. These tests
// render the complete report and compare it across worker counts, on
// seeded random histories across every workload, both clean and faulted.
// Run under -race they also double as the data-race check for every
// parallel stage.

// renderFull serializes everything user-visible about a result.
func renderFull(r *CheckResult) string {
	var b strings.Builder
	b.WriteString(r.Summary())
	fmt.Fprintf(&b, "violated: %v\nstrongest: %v\n", r.Violated, r.Strongest)
	fmt.Fprintf(&b, "nodes=%d edges=%d sccs=%d\n", r.Stats.Nodes, r.Stats.Edges, r.Stats.SCCs)
	for i, a := range r.Anomalies {
		fmt.Fprintf(&b, "--- %d: %s key=%s cycle=%s\n%s\n", i, a.Type, a.Key, a.Cycle, a.Explanation)
		for _, o := range a.Ops {
			fmt.Fprintf(&b, "  op %s\n", o.String())
		}
	}
	return b.String()
}

func checkAt(t *testing.T, w Workload, iso memdb.Isolation, f memdb.Faults, seed int64, txns, parallelism int) string {
	t.Helper()
	info, ok := workload.Lookup(string(w))
	if !ok {
		t.Fatalf("workload %q not registered", w)
	}
	g := gen.New(gen.Config{Workload: info.Gen, ActiveKeys: 5, MaxWritesPerKey: 40}, seed)
	h := memdb.Run(memdb.RunConfig{
		Clients: 10, Txns: txns, Isolation: iso, Faults: f,
		Source: g, Seed: seed, Workload: info.DB, InfoProb: 0.02,
	})
	opts := OptsFor(w, consistency.StrictSerializable)
	opts.Parallelism = parallelism
	return renderFull(Check(h, opts))
}

// TestParallelismDeterministic is the core acceptance test: Parallelism 1
// and Parallelism N produce byte-identical reports. The workload list
// comes from the registry, so newly registered workloads (bank) are
// covered automatically.
func TestParallelismDeterministic(t *testing.T) {
	var workloads []Workload
	for _, info := range workload.All() {
		workloads = append(workloads, Workload(info.Name))
	}
	engines := []struct {
		name   string
		iso    memdb.Isolation
		faults memdb.Faults
	}{
		// Clean histories: the checker must stay quiet identically.
		{"clean", memdb.StrictSerializable, memdb.Faults{}},
		// Faulted histories: every anomaly path must merge identically.
		{"stomp", memdb.SnapshotIsolation, memdb.Faults{RetryStompProb: 0.5, RetryRebaseProb: 1}},
		{"readuncommitted", memdb.ReadUncommitted, memdb.Faults{}},
	}
	for _, w := range workloads {
		for _, e := range engines {
			t.Run(fmt.Sprintf("%s/%s", w, e.name), func(t *testing.T) {
				for seed := int64(0); seed < 2; seed++ {
					sequential := checkAt(t, w, e.iso, e.faults, seed, 400, 1)
					for _, p := range []int{3, 8} {
						parallel := checkAt(t, w, e.iso, e.faults, seed, 400, p)
						if parallel != sequential {
							t.Fatalf("seed %d: parallelism %d diverges from sequential:\n--- p=1 ---\n%s\n--- p=%d ---\n%s",
								seed, p, sequential, p, parallel)
						}
					}
				}
			})
		}
	}
}

// TestParallelismDeterministicRepeated re-runs the same parallel check
// many times: scheduler interleavings must never leak into the report.
func TestParallelismDeterministicRepeated(t *testing.T) {
	base := checkAt(t, ListAppend, memdb.SnapshotIsolation,
		memdb.Faults{RetryStompProb: 0.5, RetryRebaseProb: 1}, 7, 500, 0)
	for i := 0; i < 10; i++ {
		if got := checkAt(t, ListAppend, memdb.SnapshotIsolation,
			memdb.Faults{RetryStompProb: 0.5, RetryRebaseProb: 1}, 7, 500, 0); got != base {
			t.Fatalf("run %d diverged:\n--- first ---\n%s\n--- run ---\n%s", i, base, got)
		}
	}
}
