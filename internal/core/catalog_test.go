package core

import (
	"testing"

	"repro/internal/anomaly"
	"repro/internal/consistency"
	"repro/internal/history"
	"repro/internal/op"
)

// The classic anomaly catalogue, each as a minimal history: what Elle
// calls it, and which isolation levels it refutes. This is the
// hand-proven-invariant test style the paper's §1 describes older
// checkers using — here it validates the general checker instead.

type catalogCase struct {
	name string
	ops  []op.Op
	// want is the anomaly family Elle must report.
	want anomaly.Type
	// refutes/permits are models the history must fail/still satisfy.
	refutes []consistency.Model
	permits []consistency.Model
}

func catalog() []catalogCase {
	return []catalogCase{
		{
			// Dirty write: T0 and T1's writes interleave across keys.
			name: "dirty-write-G0",
			ops: []op.Op{
				op.Txn(0, 0, op.OK, op.Append("x", 1), op.Append("y", 2)),
				op.Txn(1, 1, op.OK, op.Append("y", 1), op.Append("x", 2)),
				op.Txn(2, 2, op.OK, op.ReadList("x", []int{1, 2})),
				op.Txn(3, 3, op.OK, op.ReadList("y", []int{1, 2})),
			},
			want:    anomaly.G0,
			refutes: []consistency.Model{consistency.ReadUncommitted, consistency.Serializable},
		},
		{
			// Dirty read: T1 observed T0's aborted write.
			name: "dirty-read-G1a",
			ops: []op.Op{
				op.Txn(0, 0, op.Fail, op.Append("x", 1)),
				op.Txn(1, 1, op.OK, op.ReadList("x", []int{1})),
			},
			want:    anomaly.G1a,
			refutes: []consistency.Model{consistency.ReadCommitted},
			permits: []consistency.Model{consistency.ReadUncommitted},
		},
		{
			// Intermediate read: T1 saw the middle of T0.
			name: "intermediate-read-G1b",
			ops: []op.Op{
				op.Txn(0, 0, op.OK, op.Append("x", 1), op.Append("x", 2)),
				op.Txn(1, 1, op.OK, op.ReadList("x", []int{1})),
			},
			want:    anomaly.G1b,
			refutes: []consistency.Model{consistency.ReadCommitted},
			permits: []consistency.Model{consistency.ReadUncommitted},
		},
		{
			// Circular information flow: each observed the other's write.
			name: "circular-information-flow-G1c",
			ops: []op.Op{
				op.Txn(0, 0, op.OK, op.Append("x", 1), op.ReadList("y", []int{1})),
				op.Txn(1, 1, op.OK, op.Append("y", 1), op.ReadList("x", []int{1})),
			},
			want:    anomaly.G1c,
			refutes: []consistency.Model{consistency.ReadCommitted},
			permits: []consistency.Model{consistency.ReadUncommitted},
		},
		{
			// Read skew: T1 saw y's new value but x's old one.
			name: "read-skew-G-single",
			ops: []op.Op{
				op.Txn(0, 0, op.OK, op.Append("x", 1), op.Append("y", 1)),
				op.Txn(1, 1, op.OK, op.Append("x", 2), op.Append("y", 2)),
				op.Txn(2, 2, op.OK,
					op.ReadList("x", []int{1}), op.ReadList("y", []int{1, 2})),
				op.Txn(3, 3, op.OK,
					op.ReadList("x", []int{1, 2}), op.ReadList("y", []int{1, 2})),
			},
			want: anomaly.GSingle,
			refutes: []consistency.Model{
				consistency.SnapshotIsolation, consistency.RepeatableRead,
			},
			permits: []consistency.Model{consistency.ReadCommitted},
		},
		{
			// Write skew: disjoint writes based on overlapping reads.
			name: "write-skew-G2",
			ops: []op.Op{
				op.Txn(0, 0, op.OK, op.ReadList("x", []int{}), op.Append("y", 1)),
				op.Txn(1, 1, op.OK, op.ReadList("y", []int{}), op.Append("x", 1)),
				op.Txn(2, 2, op.OK,
					op.ReadList("x", []int{1}), op.ReadList("y", []int{1})),
			},
			want:    anomaly.G2Item,
			refutes: []consistency.Model{consistency.Serializable, consistency.RepeatableRead},
			permits: []consistency.Model{consistency.SnapshotIsolation},
		},
		{
			// Long fork: two readers disagree about commit order of
			// independent writes. Tagged as G2, per the paper.
			name: "long-fork-G2",
			ops: []op.Op{
				op.Txn(0, 0, op.OK, op.Append("x", 1)),
				op.Txn(1, 1, op.OK, op.Append("y", 1)),
				op.Txn(2, 2, op.OK, op.ReadList("x", []int{1}), op.ReadList("y", []int{})),
				op.Txn(3, 3, op.OK, op.ReadList("y", []int{1}), op.ReadList("x", []int{})),
			},
			want:    anomaly.G2Item,
			refutes: []consistency.Model{consistency.Serializable},
			permits: []consistency.Model{consistency.ReadCommitted},
		},
		{
			// Dirty update: committed state built on an aborted write.
			name: "dirty-update",
			ops: []op.Op{
				op.Txn(0, 0, op.Fail, op.Append("x", 1)),
				op.Txn(1, 1, op.OK, op.Append("x", 2)),
				op.Txn(2, 2, op.OK, op.ReadList("x", []int{1, 2})),
			},
			want:    anomaly.DirtyUpdate,
			refutes: []consistency.Model{consistency.ReadCommitted},
		},
		{
			// Future read: an element that was never written.
			name: "garbage-read",
			ops: []op.Op{
				op.Txn(0, 0, op.OK, op.ReadList("x", []int{42})),
			},
			want:    anomaly.GarbageRead,
			refutes: []consistency.Model{consistency.ReadUncommitted},
		},
	}
}

func TestAnomalyCatalog(t *testing.T) {
	for _, c := range catalog() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			h := history.MustNew(c.ops)
			// Check against serializability with pure dependency edges,
			// so verdicts depend only on Adya structure.
			res := Check(h, Opts{Workload: ListAppend, Model: consistency.Serializable})
			if !res.HasAnomaly(c.want) {
				t.Fatalf("expected %s, found %v", c.want, res.AnomalyTypes())
			}
			types := res.AnomalyTypes()
			for _, m := range c.refutes {
				if consistency.Holds(m, types) {
					t.Errorf("history should refute %s (anomalies: %v)", m, types)
				}
			}
			for _, m := range c.permits {
				if !consistency.Holds(m, types) {
					t.Errorf("history should still permit %s (anomalies: %v)", m, types)
				}
			}
		})
	}
}

// TestCatalogExplanationsComplete: every catalogued anomaly produces a
// non-empty explanation mentioning its transactions.
func TestCatalogExplanationsComplete(t *testing.T) {
	for _, c := range catalog() {
		h := history.MustNew(c.ops)
		res := Check(h, Opts{Workload: ListAppend, Model: consistency.Serializable})
		for _, a := range res.Anomalies {
			if a.Type != c.want {
				continue
			}
			if a.Explanation == "" {
				t.Errorf("%s: empty explanation", c.name)
			}
		}
	}
}
