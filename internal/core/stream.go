package core

import (
	"errors"

	"repro/internal/history"
	"repro/internal/op"
	"repro/internal/workload"
)

// Stream is an in-progress incremental check: a history is fed in
// chunks, in ascending index order, and anomalies surface as they
// become provable instead of only after the run ends. Feed validates
// each chunk, routes it to the workload's streaming session (native
// incremental for analyzers that implement workload.Incremental,
// buffer-then-batch otherwise), and returns the chunk's Delta of
// provisional findings. Finish completes the stream and produces the
// definitive CheckResult — byte-identical to core.Check over the
// concatenation of every chunk, at every Parallelism setting.
//
// A Stream is single-goroutine: Feed and Finish must not be called
// concurrently. Internally the session and the final classification fan
// out across Opts.Parallelism workers exactly as the batch pipeline
// does.
type Stream struct {
	opts Opts
	sess workload.Session
	h    *history.History
	ops  int
	done bool
}

// ErrStreamFinished is returned by Feed and Finish after Finish.
var ErrStreamFinished = errors.New("core: stream already finished")

// CheckStream begins an incremental check under opts. Like Check it
// panics on an unregistered workload name; every other failure mode
// (malformed chunks, misuse after Finish) is an error from Feed or
// Finish.
func CheckStream(opts Opts) *Stream {
	opts = opts.withDefaults()
	info := lookup(opts.Workload)
	return &Stream{
		opts: opts,
		sess: workload.BeginSession(info, opts.Opts),
	}
}

// Feed ingests the next chunk of ops, returning the anomalies the
// chunk made provable. The session validates as it ingests — the ops
// are stored, validated, and indexed exactly once. Mid-stream
// anomalies are provisional: evidence the final report will confirm,
// not the final report itself (see workload.Delta).
func (s *Stream) Feed(ops []op.Op) (workload.Delta, error) {
	if s.done {
		return workload.Delta{}, ErrStreamFinished
	}
	d, err := s.sess.Feed(ops)
	if err != nil {
		return d, err
	}
	s.ops = d.Ops
	return d, nil
}

// Finish completes the stream: the session finalizes its analysis
// while the §5.1 ordering graphs build concurrently, and the shared
// back half of the checker (merge, cycle search, classification,
// lattice evaluation) runs over the result.
func (s *Stream) Finish() (*CheckResult, error) {
	if s.done {
		return nil, ErrStreamFinished
	}
	s.done = true
	// Feeding is over, so the session's accumulation is complete: the
	// ordering graphs can build while the session finalizes.
	s.h = s.sess.History()
	orders := startOrderGraphs(s.h, s.opts)
	an, err := s.sess.Finish()
	if err != nil {
		orders.wg.Wait() // don't leave builder goroutines running
		return nil, err
	}
	return classify(s.h, s.opts, an, orders), nil
}

// History returns the accumulated history; valid after Finish, for
// callers that render history statistics or reports alongside the
// result.
func (s *Stream) History() *history.History { return s.h }

// RetireStats reports the session's resident/retired memory counters.
// The second result is false when the session does not track retirement
// (a workload session predating memory budgets).
func (s *Stream) RetireStats() (workload.RetireStats, bool) {
	if r, ok := s.sess.(workload.Retirer); ok {
		return r.RetireStats(), true
	}
	return workload.RetireStats{}, false
}

// Ops returns the number of completion ops ingested so far.
func (s *Stream) Ops() int { return s.ops }
