package core

import (
	"strings"
	"testing"

	"repro/internal/anomaly"
	"repro/internal/consistency"
	"repro/internal/gen"
	"repro/internal/history"
	"repro/internal/memdb"
	"repro/internal/op"
)

// Tests for §5.1 timestamp inference: when a database exposes transaction
// start and commit timestamps, Elle can build the time-precedes order of
// Adya's snapshot-isolation formalization and find cycles against it.

// tsHistory builds the canonical contradiction: T0 and T1 overlap in real
// time (no realtime edge), but the database's own timestamps say T0
// committed (ts 20) before T1 started (ts 30) — and yet T1 did not
// observe T0's append.
func tsHistory() *history.History {
	return history.MustNew([]op.Op{
		{Index: 0, Process: 0, Type: op.Invoke, Time: 10,
			Mops: []op.Mop{op.Append("x", 1)}},
		{Index: 1, Process: 1, Type: op.Invoke, Time: 30,
			Mops: []op.Mop{op.Read("x")}},
		{Index: 2, Process: 0, Type: op.OK, Time: 20,
			Mops: []op.Mop{op.Append("x", 1)}},
		{Index: 3, Process: 1, Type: op.OK, Time: 40,
			Mops: []op.Mop{op.ReadList("x", []int{})}},
	})
}

func TestTimestampCycleDetection(t *testing.T) {
	h := tsHistory()
	// A reader proving x = [1] eventually, so the rw edge exists.
	ops := append(h.Ops,
		op.Op{Index: 4, Process: 2, Type: op.Invoke, Time: 50,
			Mops: []op.Mop{op.Read("x")}},
		op.Op{Index: 5, Process: 2, Type: op.OK, Time: 60,
			Mops: []op.Mop{op.ReadList("x", []int{1})}},
	)
	h = history.MustNew(ops)

	opts := Opts{
		Workload:       ListAppend,
		Model:          consistency.SnapshotIsolation,
		TimestampEdges: true,
	}
	r := Check(h, opts)
	if r.Valid {
		t.Fatalf("timestamp contradiction checked as SI:\n%s", r.Summary())
	}
	found := false
	for _, typ := range r.AnomalyTypes() {
		if strings.HasSuffix(string(typ), "-timestamp") {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected a -timestamp cycle, found %v", r.AnomalyTypes())
	}
	// Without timestamp edges the same history passes SI: the
	// transactions are concurrent in real time.
	r2 := Check(h, Opts{Workload: ListAppend, Model: consistency.SnapshotIsolation})
	if !r2.Valid {
		t.Fatalf("history should pass SI without timestamp edges: %v", r2.AnomalyTypes())
	}
}

func TestTimestampViolatesSIFamilyOnly(t *testing.T) {
	types := []anomaly.Type{anomaly.GSingleTimestamp}
	if consistency.Holds(consistency.SnapshotIsolation, types) {
		t.Error("timestamp G-single should refute SI")
	}
	if consistency.Holds(consistency.Serializable, types) {
		t.Error("timestamp G-single should refute serializability (it implies SI)")
	}
	if !consistency.Holds(consistency.ReadCommitted, types) {
		t.Error("timestamp G-single should not refute read committed")
	}
	if !consistency.Holds(consistency.RepeatableRead, types) {
		t.Error("timestamp cycles say nothing about repeatable read")
	}
}

func TestTimestampEdgesSoundOnHonestClock(t *testing.T) {
	// When timestamps agree with the actual serialization (our engine's
	// commit order), enabling them adds no anomalies. Simulated by a
	// sequential history whose times equal its indices.
	h := history.MustNew([]op.Op{
		{Index: 0, Process: 0, Type: op.Invoke, Time: 1, Mops: []op.Mop{op.Append("x", 1)}},
		{Index: 1, Process: 0, Type: op.OK, Time: 2, Mops: []op.Mop{op.Append("x", 1)}},
		{Index: 2, Process: 1, Type: op.Invoke, Time: 3, Mops: []op.Mop{op.Read("x")}},
		{Index: 3, Process: 1, Type: op.OK, Time: 4, Mops: []op.Mop{op.ReadList("x", []int{1})}},
	})
	r := Check(h, Opts{Workload: ListAppend, Model: consistency.SnapshotIsolation, TimestampEdges: true})
	if !r.Valid {
		t.Fatalf("honest clock produced anomalies: %v", r.AnomalyTypes())
	}
}

func TestTimestampCycleTypeClassification(t *testing.T) {
	// CycleType must downgrade ts-closed cycles to the -timestamp
	// variants, with realtime taking precedence when both appear.
	// (Covered in unit form in internal/anomaly; this is the integration
	// sanity check via the explainer's Via labels.)
	h := tsHistory()
	ops := append(h.Ops,
		op.Op{Index: 4, Process: 2, Type: op.Invoke, Time: 50, Mops: []op.Mop{op.Read("x")}},
		op.Op{Index: 5, Process: 2, Type: op.OK, Time: 60, Mops: []op.Mop{op.ReadList("x", []int{1})}},
	)
	h = history.MustNew(ops)
	r := Check(h, Opts{Workload: ListAppend, Model: consistency.SnapshotIsolation, TimestampEdges: true})
	for _, a := range r.Anomalies {
		if strings.HasSuffix(string(a.Type), "-timestamp") {
			if !strings.Contains(a.Explanation, "contradiction") {
				t.Errorf("timestamp cycle explanation incomplete:\n%s", a.Explanation)
			}
		}
	}
}

// TestTimestampSoundnessOnEngine: with the engine exposing honest
// timestamps, enabling timestamp edges introduces no anomalies across
// seeds — the claimed order and the actual order agree.
func TestTimestampSoundnessOnEngine(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		g := gen.New(gen.Config{ActiveKeys: 5, MaxWritesPerKey: 40}, seed)
		h := memdb.Run(memdb.RunConfig{
			Clients: 10, Txns: 400, Isolation: memdb.StrictSerializable,
			Source: g, Seed: seed, ExposeTimestamps: true,
			AbortProb: 0.1, InfoProb: 0.05,
		})
		opts := OptsFor(ListAppend, consistency.StrictSerializable)
		opts.TimestampEdges = true
		r := Check(h, opts)
		if len(r.Anomalies) != 0 {
			t.Fatalf("seed %d: timestamp edges caused false positives: %v\n%s",
				seed, r.AnomalyTypes(), r.Anomalies[0].Explanation)
		}
	}
}
