package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/anomaly"
	"repro/internal/consistency"
	"repro/internal/gen"
	"repro/internal/history"
	"repro/internal/memdb"
	"repro/internal/op"
	"repro/internal/rel"
	"repro/internal/workload"
)

// Differential testing of the relational layer against the report: for
// every registered workload, clean and faulted, the lost-update, G1a,
// and cycle row sets a docs/QUERY.md query returns must equal the sets
// the classified anomaly list implies — and a streaming session's
// catalog must answer every query with bytes identical to the batch
// catalog's.

// reldiffHistory builds one history for the named workload. Engine
// workloads run memdb under a fault menu chosen to surface the
// anomalies the relational queries extract (lost updates and cycles
// for list-append, aborted reads under read-uncommitted); set-add and
// counter, whose generators are mop-level, use handcrafted histories.
func reldiffHistory(t *testing.T, name string, faulted bool) *history.History {
	t.Helper()
	run := func(g memdb.TxnSource, mw memdb.Workload, iso memdb.Isolation, f memdb.Faults, abort float64) *history.History {
		return memdb.Run(memdb.RunConfig{
			Clients: 8, Txns: 150, Isolation: iso, Faults: f,
			Source: g, Seed: 11, AbortProb: abort, Workload: mw,
		})
	}
	switch name {
	case "list-append":
		if faulted {
			// Stomp needs commit-time validation conflicts, so snapshot
			// isolation rather than read-uncommitted here; rw-register's
			// faulted run covers the aborted-read (G1a) side.
			return run(gen.New(gen.Config{ActiveKeys: 2, MaxWritesPerKey: 60}, 11),
				memdb.WorkloadList, memdb.SnapshotIsolation,
				memdb.Faults{RetryStompProb: 1, StaleReadProb: 0.3}, 0)
		}
		return run(gen.New(gen.Config{ActiveKeys: 4, MaxWritesPerKey: 40}, 11),
			memdb.WorkloadList, memdb.StrictSerializable, memdb.Faults{}, 0)
	case "rw-register":
		if faulted {
			return run(gen.New(gen.Config{Workload: gen.Register, ActiveKeys: 4, MaxWritesPerKey: 30}, 11),
				memdb.WorkloadRegister, memdb.ReadUncommitted,
				memdb.Faults{StaleReadProb: 0.3}, 0.2)
		}
		return run(gen.New(gen.Config{Workload: gen.Register, ActiveKeys: 4, MaxWritesPerKey: 30}, 11),
			memdb.WorkloadRegister, memdb.StrictSerializable, memdb.Faults{}, 0)
	case "bank":
		if faulted {
			return run(gen.New(gen.Config{Workload: gen.Bank, ActiveKeys: 5}, 11),
				memdb.WorkloadBank, memdb.SnapshotIsolation, memdb.Faults{StaleReadProb: 0.3}, 0)
		}
		return run(gen.New(gen.Config{Workload: gen.Bank, ActiveKeys: 5}, 11),
			memdb.WorkloadBank, memdb.StrictSerializable, memdb.Faults{}, 0)
	case "katomic":
		if faulted {
			return run(gen.New(gen.Config{Workload: gen.KAtomic}, 11),
				memdb.WorkloadRegister, memdb.Serializable, memdb.Faults{StaleReadProb: 0.5}, 0)
		}
		return run(gen.New(gen.Config{Workload: gen.KAtomic}, 11),
			memdb.WorkloadRegister, memdb.Serializable, memdb.Faults{}, 0)
	case "set-add":
		if faulted {
			return history.MustNew([]op.Op{
				op.Txn(0, 0, op.OK, op.Add("s", 1)),
				op.Txn(1, 1, op.Fail, op.Add("s", 2)),
				op.Txn(2, 0, op.OK, op.ReadList("s", []int{1, 2})),
			})
		}
		return history.MustNew([]op.Op{
			op.Txn(0, 0, op.OK, op.Add("s", 1)),
			op.Txn(1, 0, op.OK, op.ReadList("s", []int{1})),
		})
	case "counter":
		if faulted {
			return history.MustNew([]op.Op{
				op.Txn(0, 0, op.OK, op.Increment("c", 1)),
				op.Txn(1, 0, op.OK, op.ReadReg("c", 7)),
			})
		}
		return history.MustNew([]op.Op{
			op.Txn(0, 0, op.OK, op.Increment("c", 1)),
			op.Txn(1, 0, op.OK, op.ReadReg("c", 1)),
		})
	default:
		t.Fatalf("reldiffHistory: workload %q has no differential config; add one", name)
		return nil
	}
}

// queryRows evaluates q and returns its data rows (header dropped) as
// rendered strings, plus the full rendering for byte comparisons.
func queryRows(t *testing.T, res *CheckResult, h *history.History, q string) (map[string]bool, string) {
	t.Helper()
	r, err := res.Query(h, q)
	if err != nil {
		t.Fatalf("Query(%q): %v", q, err)
	}
	var b bytes.Buffer
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	rows := map[string]bool{}
	lines := strings.Split(strings.TrimSuffix(b.String(), "\n"), "\n")
	for _, line := range lines[1:] {
		rows[line] = true
	}
	return rows, b.String()
}

// witnessTxns mirrors the catalog's anomaly-relation row expansion:
// cycle nodes, then named ops, else a single -1 row.
func witnessTxns(a anomaly.Anomaly) []int {
	switch {
	case len(a.Cycle.Steps) > 0:
		out := make([]int, len(a.Cycle.Steps))
		for i, s := range a.Cycle.Steps {
			out[i] = s.From
		}
		return out
	case len(a.Ops) > 0:
		out := make([]int, len(a.Ops))
		for i, o := range a.Ops {
			out[i] = o.Index
		}
		return out
	default:
		return []int{-1}
	}
}

// expectedAnomalyRows derives the row set `(anomaly ?id CODE _ ?key ?t)`
// must return, straight from the report.
func expectedAnomalyRows(res *CheckResult, code anomaly.Type) map[string]bool {
	rows := map[string]bool{}
	for i, a := range res.Anomalies {
		if a.Type != code {
			continue
		}
		for _, txn := range witnessTxns(a) {
			rows[fmt.Sprintf("%d\t%s\t%d", i, rel.Str(a.Key), txn)] = true
		}
	}
	return rows
}

// expectedCycleRows derives the row set `(cycle ?id ?pos ?t ?k)` must
// return.
func expectedCycleRows(res *CheckResult) map[string]bool {
	rows := map[string]bool{}
	for i, a := range res.Anomalies {
		for pos, s := range a.Cycle.Steps {
			rows[fmt.Sprintf("%d\t%d\t%d\t%s", i, pos, s.From, s.Via)] = true
		}
	}
	return rows
}

func diffRowSets(t *testing.T, label string, want, got map[string]bool) {
	t.Helper()
	for row := range want {
		if !got[row] {
			t.Errorf("%s: report row %q missing from query result", label, row)
		}
	}
	for row := range got {
		if !want[row] {
			t.Errorf("%s: query row %q not implied by the report", label, row)
		}
	}
}

// TestRelationalQueriesMatchReport is the differential oracle for the
// relational layer: per workload × {clean, faulted}, the query-derived
// lost-update, G1a, and cycle sets equal the report's, and the
// streaming session's catalog returns byte-identical rows.
func TestRelationalQueriesMatchReport(t *testing.T) {
	queries := []struct {
		label string
		q     string
		want  func(*CheckResult) map[string]bool
	}{
		{"lost-update", fmt.Sprintf(`(anomaly ?id %s _ ?key ?t)`, anomaly.LostUpdate),
			func(r *CheckResult) map[string]bool { return expectedAnomalyRows(r, anomaly.LostUpdate) }},
		{"G1a", fmt.Sprintf(`(anomaly ?id %s _ ?key ?t)`, anomaly.G1a),
			func(r *CheckResult) map[string]bool { return expectedAnomalyRows(r, anomaly.G1a) }},
		{"cycle", `(cycle ?id ?pos ?t ?k)`, expectedCycleRows},
	}
	sawLostUpdate, sawG1a, sawCycle := false, false, false
	for _, name := range workload.Names() {
		for _, faulted := range []bool{false, true} {
			label := fmt.Sprintf("%s/faulted=%t", name, faulted)
			t.Run(label, func(t *testing.T) {
				h := reldiffHistory(t, name, faulted)
				opts := OptsFor(Workload(name), consistency.StrictSerializable)
				opts.Parallelism = 4
				res := Check(h, opts)

				st := CheckStream(opts)
				ops := h.Ops
				for off := 0; off < len(ops); off += 64 {
					if _, err := st.Feed(ops[off:min(off+64, len(ops))]); err != nil {
						t.Fatal(err)
					}
				}
				sres, err := st.Finish()
				if err != nil {
					t.Fatal(err)
				}

				for _, qc := range queries {
					got, batchBytes := queryRows(t, res, h, qc.q)
					diffRowSets(t, qc.label, qc.want(res), got)
					if _, streamBytes := queryRows(t, sres, st.History(), qc.q); streamBytes != batchBytes {
						t.Errorf("%s: stream catalog diverges from batch:\n--- batch ---\n%s--- stream ---\n%s",
							qc.label, batchBytes, streamBytes)
					}
					if len(got) > 0 {
						switch qc.label {
						case "lost-update":
							sawLostUpdate = true
						case "G1a":
							sawG1a = true
						case "cycle":
							sawCycle = true
						}
					}
				}
			})
		}
	}
	// The differential is vacuous if the fault menu stops producing the
	// anomalies it exists to compare.
	if !sawLostUpdate || !sawG1a || !sawCycle {
		t.Errorf("fault menu produced lost-update=%t G1a=%t cycle=%t; every set must be exercised non-empty",
			sawLostUpdate, sawG1a, sawCycle)
	}
}
