package core

import (
	"fmt"
	"testing"

	"repro/internal/anomaly"
	"repro/internal/consistency"
	"repro/internal/gen"
	"repro/internal/history"
	"repro/internal/memdb"
	"repro/internal/op"
	"repro/internal/workload"
)

// The streaming checker's contract is that Finish is byte-identical to
// the batch Check over the concatenation of every chunk — for every
// registered workload (native incremental sessions and the
// buffer-then-batch adapter alike), at every chunk size, at every
// parallelism level. Mid-stream deltas are provisional findings whose
// type must be confirmed by the final report.

// genHistory builds the same seeded history the parallelism tests use.
func genHistory(t *testing.T, w Workload, iso memdb.Isolation, f memdb.Faults, seed int64, txns int) *history.History {
	t.Helper()
	info, ok := workload.Lookup(string(w))
	if !ok {
		t.Fatalf("workload %q not registered", w)
	}
	g := gen.New(gen.Config{Workload: info.Gen, ActiveKeys: 5, MaxWritesPerKey: 40}, seed)
	return memdb.Run(memdb.RunConfig{
		Clients: 10, Txns: txns, Isolation: iso, Faults: f,
		Source: g, Seed: seed, Workload: info.DB, InfoProb: 0.02,
	})
}

// streamCheck drives h through CheckStream in chunks of the given size
// (0 = a single chunk), returning the final result and every delta.
func streamCheck(t *testing.T, h *history.History, opts Opts, chunk int) (*CheckResult, []workload.Delta) {
	t.Helper()
	st := CheckStream(opts)
	var deltas []workload.Delta
	ops := h.Ops
	if chunk <= 0 {
		chunk = len(ops) + 1
	}
	for len(ops) > 0 {
		n := chunk
		if n > len(ops) {
			n = len(ops)
		}
		d, err := st.Feed(ops[:n])
		if err != nil {
			t.Fatalf("Feed: %v", err)
		}
		deltas = append(deltas, d)
		ops = ops[n:]
	}
	res, err := st.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return res, deltas
}

// TestStreamEqualsBatch is the streaming acceptance test: single-chunk
// and multi-chunk streams must render byte-identically to the batch
// check, across the whole registry, clean and faulted, at parallelism
// 1 and 8.
func TestStreamEqualsBatch(t *testing.T) {
	engines := []struct {
		name   string
		iso    memdb.Isolation
		faults memdb.Faults
	}{
		{"clean", memdb.StrictSerializable, memdb.Faults{}},
		{"stomp", memdb.SnapshotIsolation, memdb.Faults{RetryStompProb: 0.5, RetryRebaseProb: 1}},
	}
	for _, info := range workload.All() {
		w := Workload(info.Name)
		for _, e := range engines {
			t.Run(fmt.Sprintf("%s/%s", w, e.name), func(t *testing.T) {
				h := genHistory(t, w, e.iso, e.faults, 1, 300)
				batchOpts := OptsFor(w, consistency.StrictSerializable)
				batchOpts.Parallelism = 1
				want := renderFull(Check(h, batchOpts))
				for _, p := range []int{1, 8} {
					// The retirement axis: a budget tiny relative to the
					// history forces many sweeps (settled prefixes encoded
					// and released, key caches dropped, graph regions
					// frozen), and the Finish must still render
					// byte-identically to batch. One corner also spills
					// segments to disk.
					for _, budget := range []int{0, 16} {
						opts := OptsFor(w, consistency.StrictSerializable)
						opts.Parallelism = p
						opts.MemoryBudget = budget
						if budget > 0 && p == 8 {
							opts.SpillDir = t.TempDir()
						}
						for _, chunk := range []int{0, 17} {
							res, deltas := streamCheck(t, h, opts, chunk)
							if got := renderFull(res); got != want {
								t.Fatalf("stream (p=%d budget=%d chunk=%d) diverges from batch:\n--- batch ---\n%s\n--- stream ---\n%s",
									p, budget, chunk, want, got)
							}
							// Every surfaced anomaly type must appear in the
							// final report: deltas are previews, not noise.
							// Under a budget the deltas are a subset of the
							// unbudgeted session's, but each one surfaced
							// still obeys the same confirmation contract.
							final := map[anomaly.Type]bool{}
							for _, a := range res.Anomalies {
								final[a.Type] = true
							}
							for _, d := range deltas {
								for _, a := range d.Anomalies {
									if !confirmed(final, a.Type) {
										t.Fatalf("mid-stream %s (key %s, budget=%d) missing from the final report",
											a.Type, a.Key, budget)
									}
								}
							}
						}
					}
				}
			})
		}
	}
}

// confirmed reports whether a mid-stream anomaly type is backed by the
// final report. Cycle types may strengthen as extra ordering edges join
// the final search (G1c -> G1c-realtime and so on), so a cycle delta is
// confirmed by any final cycle anomaly. Per the workload.Delta
// contract, a finding may instead be superseded by the structural
// anomaly that destroyed its evidence — a duplicate write evicting a
// writer, an incompatible read replacing a version order.
func confirmed(final map[anomaly.Type]bool, tp anomaly.Type) bool {
	if final[tp] {
		return true
	}
	if tp.IsCycle() {
		for ft := range final {
			if ft.IsCycle() {
				return true
			}
		}
	}
	return final[anomaly.DuplicateAppends] || final[anomaly.IncompatibleOrder]
}

// TestStreamEmptyHistory: a stream with no ops (and one with only empty
// feeds) must equal the batch check of an empty history.
func TestStreamEmptyHistory(t *testing.T) {
	h := history.MustNew(nil)
	for _, w := range []Workload{ListAppend, Register, SetAdd, Counter, Bank} {
		opts := OptsFor(w, consistency.StrictSerializable)
		want := renderFull(Check(h, opts))

		st := CheckStream(opts)
		res, err := st.Finish()
		if err != nil {
			t.Fatalf("%s: Finish: %v", w, err)
		}
		if got := renderFull(res); got != want {
			t.Fatalf("%s: empty stream diverges:\n%s\nvs\n%s", w, got, want)
		}

		st = CheckStream(opts)
		if d, err := st.Feed(nil); err != nil || len(d.Anomalies) != 0 {
			t.Fatalf("%s: empty feed: %v %v", w, d, err)
		}
		res, err = st.Finish()
		if err != nil {
			t.Fatalf("%s: Finish after empty feed: %v", w, err)
		}
		if got := renderFull(res); got != want {
			t.Fatalf("%s: empty-feed stream diverges", w)
		}
	}
}

// TestStreamMidStreamAnomalies: anomalies whose evidence completes
// mid-stream surface in the Delta of the chunk that proves them, and
// the final report confirms them.
func TestStreamMidStreamAnomalies(t *testing.T) {
	t.Run("listappend G1a", func(t *testing.T) {
		st := CheckStream(OptsFor(ListAppend, consistency.Serializable))
		d, err := st.Feed([]op.Op{op.Txn(0, 0, op.Fail, op.Append("x", 1))})
		if err != nil || len(d.Anomalies) != 0 {
			t.Fatalf("first chunk: %v %v", d, err)
		}
		d, err = st.Feed([]op.Op{op.Txn(1, 1, op.OK, op.ReadList("x", []int{1}))})
		if err != nil {
			t.Fatal(err)
		}
		if len(d.Anomalies) != 1 || d.Anomalies[0].Type != anomaly.G1a {
			t.Fatalf("expected a G1a delta, got %+v", d.Anomalies)
		}
		res, err := st.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if !res.HasAnomaly(anomaly.G1a) {
			t.Fatal("Finish did not confirm the mid-stream G1a")
		}
		// The mid-stream explanation is already the canonical one.
		if d.Anomalies[0].Explanation != findType(res, anomaly.G1a).Explanation {
			t.Fatalf("mid-stream explanation %q != final %q",
				d.Anomalies[0].Explanation, findType(res, anomaly.G1a).Explanation)
		}
	})
	t.Run("rwregister G1a late abort", func(t *testing.T) {
		// The read arrives before its writer's failure: the G1a becomes
		// provable only when the abort lands.
		st := CheckStream(OptsFor(Register, consistency.Serializable))
		d, err := st.Feed([]op.Op{op.Txn(0, 0, op.OK, op.ReadReg("x", 7))})
		if err != nil || len(d.Anomalies) != 0 {
			t.Fatalf("first chunk: %v %v", d, err)
		}
		d, err = st.Feed([]op.Op{op.Txn(1, 1, op.Fail, op.Write("x", 7))})
		if err != nil {
			t.Fatal(err)
		}
		if len(d.Anomalies) != 1 || d.Anomalies[0].Type != anomaly.G1a {
			t.Fatalf("expected a late-abort G1a delta, got %+v", d.Anomalies)
		}
		res, err := st.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if !res.HasAnomaly(anomaly.G1a) {
			t.Fatal("Finish did not confirm the mid-stream G1a")
		}
	})
	t.Run("listappend cycle at scan point", func(t *testing.T) {
		// A G1c pair, then enough padding completions to cross the
		// session's scan interval inside one feed.
		ops := []op.Op{
			op.Txn(0, 0, op.OK, op.Append("x", 1), op.ReadList("y", []int{2})),
			op.Txn(1, 1, op.OK, op.Append("y", 2), op.ReadList("x", []int{1})),
		}
		for i := 0; i < 130; i++ {
			ops = append(ops, op.Txn(2+i, 2, op.OK, op.Append("z", i+1)))
		}
		st := CheckStream(OptsFor(ListAppend, consistency.Serializable))
		d, err := st.Feed(ops)
		if err != nil {
			t.Fatal(err)
		}
		var sawCycle bool
		for _, a := range d.Anomalies {
			if len(a.Cycle.Steps) > 0 {
				sawCycle = true
				if a.Explanation == "" {
					t.Fatal("mid-stream cycle lacks an explanation")
				}
			}
		}
		if !sawCycle {
			t.Fatalf("expected a mid-stream cycle delta, got %+v", d.Anomalies)
		}
		res, err := st.Finish()
		if err != nil {
			t.Fatal(err)
		}
		var finalCycle bool
		for _, a := range res.Anomalies {
			if len(a.Cycle.Steps) > 0 {
				finalCycle = true
			}
		}
		if !finalCycle {
			t.Fatal("Finish did not confirm the mid-stream cycle")
		}
	})
}

// TestStreamSupersededFinding pins the workload.Delta caveat: a
// provisional G1a whose evidence — a unique aborted writer — is
// destroyed by a later duplicate append is superseded by the
// duplicate-append anomaly at Finish, not confirmed; and the final
// report still matches the batch check byte for byte.
func TestStreamSupersededFinding(t *testing.T) {
	ops := []op.Op{
		op.Txn(0, 0, op.Fail, op.Append("x", 1)),
		op.Txn(1, 1, op.OK, op.ReadList("x", []int{1})),
		op.Txn(2, 2, op.OK, op.Append("x", 1)), // duplicate: evicts the aborted writer
	}
	opts := OptsFor(ListAppend, consistency.Serializable)
	st := CheckStream(opts)
	d, err := st.Feed(ops[:2])
	if err != nil || len(d.Anomalies) != 1 || d.Anomalies[0].Type != anomaly.G1a {
		t.Fatalf("expected a provisional G1a, got %+v, %v", d.Anomalies, err)
	}
	if _, err := st.Feed(ops[2:]); err != nil {
		t.Fatal(err)
	}
	res, err := st.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if res.HasAnomaly(anomaly.G1a) {
		t.Fatal("the G1a's evidence was destroyed; it should not survive to Finish")
	}
	if !res.HasAnomaly(anomaly.DuplicateAppends) {
		t.Fatal("the superseding duplicate-append anomaly is missing")
	}
	want := renderFull(Check(history.MustNew(ops), opts))
	if got := renderFull(res); got != want {
		t.Fatalf("stream diverges from batch:\n%s\nvs\n%s", got, want)
	}
}

func findType(res *CheckResult, tp anomaly.Type) anomaly.Anomaly {
	for _, a := range res.Anomalies {
		if a.Type == tp {
			return a
		}
	}
	return anomaly.Anomaly{}
}

// TestStreamAdapterFallback: workloads without a native session stream
// through the buffer-then-batch adapter — empty deltas, batch-identical
// finish.
func TestStreamAdapterFallback(t *testing.T) {
	for _, w := range []Workload{SetAdd, Counter, Bank} {
		info, _ := workload.Lookup(string(w))
		if info.Incremental != nil {
			t.Fatalf("%s unexpectedly registered a native session; this test covers the adapter", w)
		}
		h := genHistory(t, w, memdb.ReadUncommitted, memdb.Faults{}, 3, 200)
		opts := OptsFor(w, consistency.StrictSerializable)
		want := renderFull(Check(h, opts))
		res, deltas := streamCheck(t, h, opts, 23)
		if got := renderFull(res); got != want {
			t.Fatalf("%s: adapter stream diverges from batch", w)
		}
		for _, d := range deltas {
			if len(d.Anomalies) != 0 {
				t.Fatalf("%s: adapter surfaced mid-stream anomalies: %+v", w, d.Anomalies)
			}
		}
		if deltas[len(deltas)-1].Ops != len(h.Completions()) {
			t.Fatalf("%s: final delta op count %d != %d", w, deltas[len(deltas)-1].Ops, len(h.Completions()))
		}
	}
}

// TestStreamMisuse: feeding after Finish, double Finish, and malformed
// chunks are errors, not panics.
func TestStreamMisuse(t *testing.T) {
	st := CheckStream(OptsFor(ListAppend, consistency.Serializable))
	if _, err := st.Finish(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Feed([]op.Op{op.Txn(0, 0, op.OK, op.Append("x", 1))}); err == nil {
		t.Fatal("Feed after Finish should fail")
	}
	if _, err := st.Finish(); err == nil {
		t.Fatal("double Finish should fail")
	}

	st = CheckStream(OptsFor(ListAppend, consistency.Serializable))
	if _, err := st.Feed([]op.Op{op.Txn(4, 0, op.OK, op.Append("x", 1))}); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Feed([]op.Op{op.Txn(2, 1, op.OK, op.Append("x", 2))}); err == nil {
		t.Fatal("out-of-order feed should fail")
	}
}

// TestStreamFinishAfterFailedFeed: once a chunk is rejected, Finish
// must refuse too — for every session kind — rather than bless the
// accepted prefix as a definitive verdict the batch validator would
// never issue. The rejected op must also not leak into the history.
func TestStreamFinishAfterFailedFeed(t *testing.T) {
	bad := []op.Op{
		{Index: 0, Process: 0, Type: op.Invoke, Mops: []op.Mop{op.Read("x")}},
		{Index: 1, Process: 0, Type: op.Invoke, Mops: []op.Mop{op.Read("x")}}, // double invocation
	}
	for _, w := range []Workload{ListAppend, Register, Bank} { // native ×2 + adapter
		st := CheckStream(OptsFor(w, consistency.Serializable))
		if _, err := st.Feed(bad); err == nil {
			t.Fatalf("%s: malformed feed should fail", w)
		}
		if _, err := st.Finish(); err == nil {
			t.Fatalf("%s: Finish after a failed Feed should fail", w)
		}
		if h := st.History(); h != nil {
			for _, o := range h.Ops {
				if o.Index == 1 {
					t.Fatalf("%s: rejected op leaked into the history", w)
				}
			}
		}
	}
}
