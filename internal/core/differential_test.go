package core

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/consistency"
	"repro/internal/gen"
	"repro/internal/history"
	"repro/internal/memdb"
	"repro/internal/op"
	"repro/internal/serialcheck"
)

// Differential testing against the exhaustive search baseline: on small
// histories where the baseline completes, Elle must never report a
// serializability-refuting anomaly that the baseline can explain away.
// (The converse — the baseline rejecting histories Elle passes — is
// permitted: Elle is sound, not complete.)

func ellePureDeps(h *history.History) *CheckResult {
	// Pure Adya dependencies only: no process/realtime edges, no
	// lost-update heuristic — exactly what "not serializable" means.
	return Check(h, Opts{Workload: ListAppend, Model: consistency.Serializable})
}

func TestDifferentialAgainstBaseline(t *testing.T) {
	faultMenu := []memdb.Faults{
		{},
		{RetryStompProb: 1},
		{RetryRebaseProb: 1},
		{SkipReadValidationProb: 0.5},
		{SkipOwnWriteProb: 0.3},
		{DuplicateAppendProb: 0.2},
		{StaleReadProb: 0.5},
	}
	isoMenu := []memdb.Isolation{
		memdb.StrictSerializable,
		memdb.SnapshotIsolation,
		memdb.ReadCommitted,
		memdb.ReadUncommitted,
	}
	rng := rand.New(rand.NewSource(2024))
	incomplete := 0
	for trial := 0; trial < 60; trial++ {
		seed := rng.Int63()
		iso := isoMenu[rng.Intn(len(isoMenu))]
		f := faultMenu[rng.Intn(len(faultMenu))]
		g := gen.New(gen.Config{ActiveKeys: 3, MaxWritesPerKey: 20, MaxOps: 3}, seed)
		h := memdb.Run(memdb.RunConfig{
			Clients: 3, Txns: 40, Isolation: iso, Faults: f,
			Source: g, Seed: seed, AbortProb: 0.1,
		})

		base := serialcheck.Check(h, serialcheck.Opts{Timeout: 5 * time.Second})
		if base.Outcome == serialcheck.Unknown {
			continue // baseline timed out; nothing to compare
		}
		res := ellePureDeps(h)

		if !res.Valid && base.Outcome == serialcheck.Serializable {
			t.Fatalf("trial %d (iso=%v faults=%+v seed=%d): Elle refuted serializability (%v) but the exhaustive search found a witness order %v\n%s",
				trial, iso, f, seed, res.AnomalyTypes(), base.Order, res.Anomalies[0].Explanation)
		}
		if res.Valid && base.Outcome == serialcheck.NotSerializable {
			incomplete++ // allowed: Elle is sound, not complete
		}
	}
	t.Logf("incompleteness observed on %d/60 trials (allowed)", incomplete)
}

// TestAnalyzerRobustness fuzzes the analyzers with structurally arbitrary
// histories: random mops, random outcomes, contradictory reads. Nothing
// may panic, and verdicts must be deterministic.
func TestAnalyzerRobustness(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	keys := []string{"a", "b", "c"}
	randomMop := func() op.Mop {
		k := keys[rng.Intn(len(keys))]
		switch rng.Intn(6) {
		case 0:
			return op.Append(k, rng.Intn(10))
		case 1:
			return op.Write(k, rng.Intn(10))
		case 2:
			var v []int
			for j := 0; j < rng.Intn(4); j++ {
				v = append(v, rng.Intn(10))
			}
			return op.ReadList(k, v)
		case 3:
			return op.ReadReg(k, rng.Intn(10))
		case 4:
			return op.ReadNil(k)
		default:
			return op.Read(k)
		}
	}
	types := []op.Type{op.OK, op.OK, op.OK, op.Fail, op.Info}
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(20)
		ops := make([]op.Op, n)
		for i := range ops {
			mops := make([]op.Mop, 1+rng.Intn(4))
			for j := range mops {
				mops[j] = randomMop()
			}
			ops[i] = op.Txn(i, rng.Intn(4), types[rng.Intn(len(types))], mops...)
		}
		h := history.MustNew(ops)
		for _, w := range []Workload{ListAppend, Register, SetAdd, Counter} {
			r1 := Check(h, OptsFor(w, consistency.StrictSerializable))
			r2 := Check(h, OptsFor(w, consistency.StrictSerializable))
			if r1.Valid != r2.Valid || len(r1.Anomalies) != len(r2.Anomalies) {
				t.Fatalf("trial %d workload %v: nondeterministic verdict", trial, w)
			}
		}
	}
}
