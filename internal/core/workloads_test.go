package core

import (
	"testing"

	"repro/internal/anomaly"
	"repro/internal/consistency"
	"repro/internal/gen"
	"repro/internal/memdb"
	"repro/internal/workload"
)

// End-to-end coverage for the weaker datatypes of §3 (sets and
// counters), plus the datatype-inference-power comparison the paper's §3
// narrative makes: the same engine bug is visible through lists, partly
// visible through sets and registers, and nearly invisible through
// counters.

func runWorkload(t *testing.T, w Workload, iso memdb.Isolation, f memdb.Faults, seed int64, txns int) *CheckResult {
	t.Helper()
	info, ok := workload.Lookup(string(w))
	if !ok {
		t.Fatalf("workload %q not registered", w)
	}
	g := gen.New(gen.Config{Workload: info.Gen, ActiveKeys: 5, MaxWritesPerKey: 40}, seed)
	h := memdb.Run(memdb.RunConfig{
		Clients: 10, Txns: txns, Isolation: iso, Faults: f,
		Source: g, Seed: seed, Workload: info.DB,
	})
	return Check(h, OptsFor(w, consistency.StrictSerializable))
}

// TestSoundnessSetWorkload: faultless serializable histories over sets
// check clean.
func TestSoundnessSetWorkload(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		r := runWorkload(t, SetAdd, memdb.StrictSerializable, memdb.Faults{}, seed, 300)
		if len(r.Anomalies) != 0 {
			t.Fatalf("seed %d: set false positives: %v\n%s",
				seed, r.AnomalyTypes(), r.Anomalies[0].Explanation)
		}
	}
}

// TestSoundnessCounterWorkload: same for counters.
func TestSoundnessCounterWorkload(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		r := runWorkload(t, Counter, memdb.StrictSerializable, memdb.Faults{}, seed, 300)
		if len(r.Anomalies) != 0 {
			t.Fatalf("seed %d: counter false positives: %v\n%s",
				seed, r.AnomalyTypes(), r.Anomalies[0].Explanation)
		}
	}
}

// TestSoundnessBankWorkload: faultless serializable bank histories —
// opening deposit, transfers, read-all observations — check clean.
func TestSoundnessBankWorkload(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		r := runWorkload(t, Bank, memdb.StrictSerializable, memdb.Faults{}, seed, 300)
		if len(r.Anomalies) != 0 {
			t.Fatalf("seed %d: bank false positives: %v\n%s",
				seed, r.AnomalyTypes(), r.Anomalies[0].Explanation)
		}
	}
}

// TestSoundnessBankWorkloadWithInfoOps: lost commit acknowledgements
// must not fabricate anomalies — an indeterminate transfer whose commit
// actually failed may not collect anti-dependency edges.
func TestSoundnessBankWorkloadWithInfoOps(t *testing.T) {
	info, _ := workload.Lookup(string(Bank))
	for seed := int64(0); seed < 10; seed++ {
		g := gen.New(gen.Config{Workload: info.Gen, ActiveKeys: 5}, seed)
		h := memdb.Run(memdb.RunConfig{
			Clients: 10, Txns: 400, Isolation: memdb.StrictSerializable,
			Source: g, Seed: seed, Workload: info.DB, InfoProb: 0.05,
		})
		r := Check(h, OptsFor(Bank, consistency.StrictSerializable))
		if len(r.Anomalies) != 0 {
			t.Fatalf("seed %d: info ops caused bank false positives: %v\n%s",
				seed, r.AnomalyTypes(), r.Anomalies[0].Explanation)
		}
	}
}

// TestBankWorkloadDetectsStaleReads: transfers resolved against stale
// balances lose money, which the total invariant (and the dependency
// cycles) catch.
func TestBankWorkloadDetectsStaleReads(t *testing.T) {
	foundMismatch := false
	foundInvalid := false
	for seed := int64(0); seed < 10 && !(foundMismatch && foundInvalid); seed++ {
		r := runWorkload(t, Bank, memdb.SnapshotIsolation,
			memdb.Faults{StaleReadProb: 0.3}, seed, 600)
		if r.HasAnomaly(anomaly.TotalMismatch) {
			foundMismatch = true
		}
		if !r.Valid {
			foundInvalid = true
		}
	}
	if !foundMismatch {
		t.Error("stale reads never broke the bank total across 10 seeds")
	}
	if !foundInvalid {
		t.Error("stale reads never invalidated a bank history across 10 seeds")
	}
}

// TestSetWorkloadDetectsNilReads: the Dgraph-style nil-read fault shows
// up through sets as anti-dependency cycles or aborted-looking reads.
func TestSetWorkloadDetectsNilReads(t *testing.T) {
	found := false
	for seed := int64(0); seed < 10 && !found; seed++ {
		r := runWorkload(t, SetAdd, memdb.SnapshotIsolation,
			memdb.Faults{NilReadProb: 0.1}, seed, 600)
		if !r.Valid {
			found = true
		}
	}
	if !found {
		t.Fatal("nil reads invisible through set workload across 10 seeds")
	}
}

// TestCounterWorkloadDetectsGarbage: reads outside the increment
// envelope are caught even through counters.
func TestCounterWorkloadDetectsGarbage(t *testing.T) {
	// The skip-own-write fault makes a transaction's own read miss its
	// increments — visible as a session-monotonicity violation or not at
	// all (counters are weak); the stale-read fault can make a read fall
	// below a prior session read.
	found := false
	for seed := int64(0); seed < 20 && !found; seed++ {
		r := runWorkload(t, Counter, memdb.SnapshotIsolation,
			memdb.Faults{StaleReadProb: 0.3}, seed, 600)
		if r.HasAnomaly(anomaly.Internal) {
			found = true
		}
	}
	if !found {
		t.Fatal("stale reads invisible through counter workload across 20 seeds")
	}
}

// TestDatatypeInferencePower is the §3 hierarchy as one executable
// comparison: under a snapshot-isolated engine (write skew permitted and
// present), the list workload refutes serializability via G2 cycles;
// counters cannot see the anomaly at all.
func TestDatatypeInferencePower(t *testing.T) {
	// Lists: G2-item must be found across these seeds.
	foundList := false
	for seed := int64(0); seed < 10 && !foundList; seed++ {
		r := runWorkload(t, ListAppend, memdb.SnapshotIsolation, memdb.Faults{}, seed, 600)
		if r.HasAnomaly(anomaly.G2Item) || r.HasAnomaly(anomaly.G2ItemRealtime) ||
			r.HasAnomaly(anomaly.G2ItemProcess) {
			foundList = true
		}
	}
	if !foundList {
		t.Error("write skew invisible through list workload")
	}

	// Counters: no dependency inference exists, so no cycle anomalies
	// can ever be reported — and the bounds checks stay quiet on a
	// correct SI engine.
	for seed := int64(0); seed < 10; seed++ {
		r := runWorkload(t, Counter, memdb.SnapshotIsolation, memdb.Faults{}, seed, 600)
		for _, typ := range r.AnomalyTypes() {
			if typ.IsCycle() {
				t.Errorf("counter workload reported a cycle anomaly %s", typ)
			}
		}
	}
}

// TestSetWorkloadSeesLongForkShapes: sets can witness write-skew-like
// G2 shapes (two readers each missing the other's add), unlike counters.
func TestSetWorkloadSeesWriteSkew(t *testing.T) {
	found := false
	for seed := int64(0); seed < 20 && !found; seed++ {
		r := runWorkload(t, SetAdd, memdb.SnapshotIsolation, memdb.Faults{}, seed, 800)
		if r.HasAnomaly(anomaly.G2Item) || r.HasAnomaly(anomaly.G2ItemRealtime) ||
			r.HasAnomaly(anomaly.G2ItemProcess) {
			found = true
		}
		// SI must never show G-single through any datatype.
		if r.HasAnomaly(anomaly.GSingle) {
			t.Fatalf("seed %d: SI engine produced G-single through sets", seed)
		}
	}
	if !found {
		t.Error("write skew invisible through set workload across 20 seeds")
	}
}
