package core

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"testing"

	"repro/internal/consistency"
	"repro/internal/op"
)

// soakGen emits a serializable list-append history one chunk at a time,
// shaped so a budgeted stream can actually retire: keys are used in
// bursts — a small working set appended to and read for a stretch, then
// abandoned forever — so every burst's keys go quiescent and age out of
// the retirement window as the stream moves on. The generator itself
// holds only the current burst's key contents, never the whole history;
// a harness that accumulated O(history) state would drown the very
// measurement the soak test exists to take.
type soakGen struct {
	rng      *rand.Rand
	idx      int // next op index
	next     int // next unique append value
	burst    int
	inBurst  int // ops emitted in the current burst
	burstLen int
	keys     []string
	contents map[string][]int
}

const soakKeysPerBurst = 8

func newSoakGen(burstLen int) *soakGen {
	g := &soakGen{rng: rand.New(rand.NewSource(8)), burstLen: burstLen}
	g.rotate()
	return g
}

// rotate abandons the current working set and opens the next burst's.
func (g *soakGen) rotate() {
	g.keys = g.keys[:0]
	g.contents = make(map[string][]int, soakKeysPerBurst)
	for i := 0; i < soakKeysPerBurst; i++ {
		k := fmt.Sprintf("b%dk%d", g.burst, i)
		g.keys = append(g.keys, k)
		g.contents[k] = nil
	}
	g.burst++
	g.inBurst = 0
}

// chunk emits the next n committed ops (compact form: every op is its
// own completion, so nothing but the budget pins the stream's tail).
func (g *soakGen) chunk(n int) []op.Op {
	ops := make([]op.Op, 0, n)
	for len(ops) < n {
		if g.inBurst >= g.burstLen {
			g.rotate()
		}
		mops := make([]op.Mop, 0, 3)
		for m := 1 + g.rng.Intn(3); m > 0; m-- {
			k := g.keys[g.rng.Intn(len(g.keys))]
			if g.rng.Intn(4) == 0 {
				cur := g.contents[k]
				mops = append(mops, op.ReadList(k, append([]int{}, cur...)))
			} else {
				mops = append(mops, op.Mop{F: op.FAppend, Key: k, Arg: g.next})
				g.contents[k] = append(g.contents[k], g.next)
				g.next++
			}
		}
		ops = append(ops, op.Op{
			Index: g.idx, Process: g.idx % 10, Time: int64(g.idx),
			Type: op.OK, Mops: mops,
		})
		g.idx++
		g.inBurst++
	}
	return ops
}

// heapAlloc samples the live heap after a full collection.
func heapAlloc() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// TestStreamBoundedMemory is the bounded-memory soak test: a budgeted
// stream fed a history ~20x its window must hold its heap flat — later
// samples no worse than ~2x the quarter-way mark — while retiring most
// of the history to spilled segments, and must still finish with a
// report byte-identical to the batch check of the same ops.
//
// The default run is sized for CI; set ELLE_SOAK_OPS to scale it (the
// acceptance soak per docs/STREAMING.md is ELLE_SOAK_OPS=5000000, a
// history comfortably bigger than the budgeted session's resident set).
func TestStreamBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test; skipped in -short")
	}
	totalOps := 100_000
	if env := os.Getenv("ELLE_SOAK_OPS"); env != "" {
		n, err := strconv.Atoi(env)
		if err != nil || n <= 0 {
			t.Fatalf("bad ELLE_SOAK_OPS %q: %v", env, err)
		}
		totalOps = n
	}
	budget := totalOps / 20
	const chunk = 1024

	opts := OptsFor(ListAppend, consistency.StrictSerializable)
	opts.MemoryBudget = budget
	opts.SpillDir = t.TempDir()
	st := CheckStream(opts)

	sg := newSoakGen(budget / 4)
	var samples []uint64
	sampleEvery := totalOps / chunk / 20
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	for fed, chunks := 0, 0; fed < totalOps; chunks++ {
		n := chunk
		if fed+n > totalOps {
			n = totalOps - fed
		}
		if _, err := st.Feed(sg.chunk(n)); err != nil {
			t.Fatalf("Feed at op %d: %v", fed, err)
		}
		fed += n
		if chunks%sampleEvery == 0 {
			samples = append(samples, heapAlloc())
		}
	}

	// The plateau assertion: once the window has filled and the first
	// sweeps have run (a quarter of the way in), the heap must not keep
	// growing with the history. The 2x + slack bound is generous — GC
	// timing and segment buffers wobble — but an O(history) regression
	// blows far past it: resident ops alone would grow 4x from the
	// quarter mark to the end.
	base := samples[len(samples)/4]
	const slack = 48 << 20
	for i, s := range samples[len(samples)/4:] {
		if s > 2*base+slack {
			t.Fatalf("heap sample %d = %d MiB exceeds plateau bound (baseline %d MiB): resident set is growing with the history",
				i+len(samples)/4, s>>20, base>>20)
		}
	}

	rs, ok := st.RetireStats()
	if !ok {
		t.Fatal("budgeted stream session reports no retire stats")
	}
	if rs.Stream.RetiredOps < totalOps/2 {
		t.Fatalf("only %d of %d ops retired; retirement is not keeping up: %+v",
			rs.Stream.RetiredOps, totalOps, rs.Stream)
	}
	if rs.Stream.SpilledBytes == 0 {
		t.Fatalf("no segment bytes spilled despite SpillDir; stats %+v", rs.Stream)
	}
	if rs.RetiredKeys == 0 {
		t.Fatal("no keys retired despite bursty quiescence")
	}
	if rs.Stream.Degraded != "" {
		t.Fatalf("retirement degraded: %s", rs.Stream.Degraded)
	}

	res, err := st.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if !res.Valid {
		t.Fatalf("serializable soak history found invalid: %v", res.AnomalyTypes())
	}

	// Finish rehydrated the full history; the batch check over it must
	// render byte-identically (the stream/batch contract, at soak scale).
	if got, want := renderFull(res), renderFull(Check(st.History(), OptsFor(ListAppend, consistency.StrictSerializable))); got != want {
		t.Fatalf("soak stream diverges from batch:\n--- batch ---\n%.2000s\n--- stream ---\n%.2000s", want, got)
	}
}
