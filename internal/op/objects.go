package op

import (
	"fmt"
	"sort"
)

// This file implements the example objects of the paper's Figure 1:
//
//	Object    Versions  x_init  Writes
//	Register  any       nil     w(xi, a) -> (a, nil)
//	Counter   integers  0       w(xi, a) -> (xi+a, nil)
//	Set       sets      {}      w(xi, a) -> (xi ∪ {a}, nil)
//	List      lists     []      w([e1..en], a) -> ([e1..en, a], nil)
//
// Version is the common value representation used by the in-memory database
// and by the analyzers' internal-consistency models. Every object's version
// is representable as (Nil?, Int, Elems): registers use Nil/Int, counters
// use Int, sets and lists use Elems.

// ObjectKind identifies one of the paper's four example datatypes.
type ObjectKind uint8

const (
	// KindRegister is a last-writer-wins register; writes blindly replace.
	KindRegister ObjectKind = iota
	// KindCounter is an integer counter; writes increment.
	KindCounter
	// KindSet is a grow-only set; writes add a unique element.
	KindSet
	// KindList is an append-only list; writes append a unique element.
	// Lists are the paper's traceable object: every version has exactly
	// one trace, so reads reveal the full version history.
	KindList
)

// String returns the datatype's name.
func (k ObjectKind) String() string {
	switch k {
	case KindRegister:
		return "register"
	case KindCounter:
		return "counter"
	case KindSet:
		return "set"
	case KindList:
		return "list"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// WriteFun returns the micro-op function that mutates objects of kind k.
func (k ObjectKind) WriteFun() Fun {
	switch k {
	case KindRegister:
		return FWrite
	case KindCounter:
		return FIncrement
	case KindSet:
		return FAdd
	default:
		return FAppend
	}
}

// Traceable reports whether every version of an object of kind k has
// exactly one trace (§4.1.6). Only lists are traceable: a list value
// [1 2 3] proves x took on the versions [], [1], [1 2], [1 2 3] in exactly
// that order.
func (k ObjectKind) Traceable() bool { return k == KindList }

// Version is a value of one of the example objects. The zero Version of a
// register is distinguished from a written value via Nil.
type Version struct {
	Kind  ObjectKind
	Nil   bool  // register only: true for the initial, unwritten version
	Int   int   // register value or counter total
	Elems []int // set or list elements (sets kept in insertion order)
}

// InitVersion returns the initial version x_init for kind k.
func InitVersion(k ObjectKind) Version {
	switch k {
	case KindRegister:
		return Version{Kind: k, Nil: true}
	case KindCounter:
		return Version{Kind: k}
	default:
		return Version{Kind: k, Elems: []int{}}
	}
}

// Apply performs the object's write operation with argument a and returns
// the successor version. Per Figure 1, every write returns nil to the
// client, so Apply has no return value beyond the new version. Apply never
// mutates v.
func (v Version) Apply(a int) Version {
	switch v.Kind {
	case KindRegister:
		return Version{Kind: v.Kind, Int: a}
	case KindCounter:
		return Version{Kind: v.Kind, Int: v.Int + a}
	default:
		elems := make([]int, len(v.Elems), len(v.Elems)+1)
		copy(elems, v.Elems)
		return Version{Kind: v.Kind, Elems: append(elems, a)}
	}
}

// Equal reports whether two versions are the same value. Set versions
// compare as sets; list versions compare element-wise in order.
func (v Version) Equal(w Version) bool {
	if v.Kind != w.Kind {
		return false
	}
	switch v.Kind {
	case KindRegister:
		return v.Nil == w.Nil && (v.Nil || v.Int == w.Int)
	case KindCounter:
		return v.Int == w.Int
	case KindSet:
		if len(v.Elems) != len(w.Elems) {
			return false
		}
		a, b := sortedCopy(v.Elems), sortedCopy(w.Elems)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	default:
		if len(v.Elems) != len(w.Elems) {
			return false
		}
		for i := range v.Elems {
			if v.Elems[i] != w.Elems[i] {
				return false
			}
		}
		return true
	}
}

// String renders the version: "nil", "7", "{1 2}", or "[1 2 3]".
func (v Version) String() string {
	switch v.Kind {
	case KindRegister:
		if v.Nil {
			return "nil"
		}
		return fmt.Sprintf("%d", v.Int)
	case KindCounter:
		return fmt.Sprintf("%d", v.Int)
	case KindSet:
		s := sortedCopy(v.Elems)
		out := "{"
		for i, e := range s {
			if i > 0 {
				out += " "
			}
			out += fmt.Sprintf("%d", e)
		}
		return out + "}"
	default:
		return FormatList(v.Elems)
	}
}

func sortedCopy(xs []int) []int {
	s := make([]int, len(xs))
	copy(s, xs)
	sort.Ints(s)
	return s
}

// IsPrefix reports whether a is a prefix of b. It is the traceability
// test for list versions: if every committed read of x is a prefix of the
// longest read, the observation is consistent (§4.2.1).
func IsPrefix(a, b []int) bool {
	if len(a) > len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
