package op

import (
	"testing"
	"testing/quick"
)

func TestFunString(t *testing.T) {
	cases := map[Fun]string{
		FRead:      "r",
		FWrite:     "w",
		FAppend:    "append",
		FAdd:       "add",
		FIncrement: "increment",
	}
	for f, want := range cases {
		if got := f.String(); got != want {
			t.Errorf("Fun(%d).String() = %q, want %q", f, got, want)
		}
	}
}

func TestFunIsWrite(t *testing.T) {
	if FRead.IsWrite() {
		t.Error("FRead.IsWrite() = true")
	}
	for _, f := range []Fun{FWrite, FAppend, FAdd, FIncrement} {
		if !f.IsWrite() {
			t.Errorf("%s.IsWrite() = false", f)
		}
	}
}

func TestMopConstructors(t *testing.T) {
	m := Append("x", 3)
	if m.F != FAppend || m.Key != "x" || m.Arg != 3 {
		t.Errorf("Append: got %+v", m)
	}
	if !m.IsWrite() || m.IsRead() {
		t.Error("append should be a write")
	}

	r := ReadList("y", []int{1, 2})
	if !r.IsRead() || !r.ListKnown() {
		t.Error("ReadList should be a known read")
	}
	if len(r.List) != 2 {
		t.Errorf("ReadList kept %v", r.List)
	}

	empty := ReadList("y", nil)
	if !empty.ListKnown() {
		t.Error("ReadList(nil) should normalize to a known empty read")
	}
	if len(empty.List) != 0 {
		t.Errorf("ReadList(nil) = %v", empty.List)
	}

	unknown := Read("y")
	if unknown.ListKnown() {
		t.Error("Read should have an unknown result")
	}

	rn := ReadNil("z")
	if !rn.RegKnown || !rn.RegNil {
		t.Errorf("ReadNil: got %+v", rn)
	}
	rv := ReadReg("z", 7)
	if !rv.RegKnown || rv.RegNil || rv.Reg != 7 {
		t.Errorf("ReadReg: got %+v", rv)
	}
}

func TestMopString(t *testing.T) {
	cases := []struct {
		m    Mop
		want string
	}{
		{Append("34", 5), "append(34, 5)"},
		{ReadList("34", []int{2, 1, 5, 4}), "r(34, [2 1 5 4])"},
		{ReadList("8", []int{}), "r(8, [])"},
		{Read("8"), "r(8)"},
		{ReadNil("10"), "r(10, nil)"},
		{ReadReg("10", 2), "r(10, 2)"},
		{Write("10", 2), "w(10, 2)"},
		{Increment("c", 3), "increment(c, 3)"},
		{Add("s", 9), "add(s, 9)"},
	}
	for _, c := range cases {
		if got := c.m.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestOpPredicates(t *testing.T) {
	ok := Txn(1, 0, OK, Append("x", 1))
	fail := Txn(2, 0, Fail, Append("x", 2))
	info := Txn(3, 0, Info, Append("x", 3))
	if !ok.Committed() || ok.Aborted() || ok.Indeterminate() {
		t.Error("OK predicates wrong")
	}
	if !fail.Aborted() || fail.Committed() {
		t.Error("Fail predicates wrong")
	}
	if !info.Indeterminate() || !info.MayHaveCommitted() {
		t.Error("Info predicates wrong")
	}
	if fail.MayHaveCommitted() {
		t.Error("Fail.MayHaveCommitted() = true")
	}
	if !ok.MayHaveCommitted() {
		t.Error("OK.MayHaveCommitted() = false")
	}
}

func TestOpKeysAndWrites(t *testing.T) {
	o := Txn(5, 1, OK,
		Append("a", 1), ReadList("b", []int{}), Append("a", 2), ReadList("c", nil))
	keys := o.Keys()
	want := []string{"a", "b", "c"}
	if len(keys) != len(want) {
		t.Fatalf("Keys() = %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Errorf("Keys()[%d] = %q, want %q", i, keys[i], want[i])
		}
	}
	if !o.WritesKey("a") || o.WritesKey("b") || o.WritesKey("d") {
		t.Error("WritesKey wrong")
	}
}

func TestOpString(t *testing.T) {
	o := Txn(42, 3, OK, Append("3", 837), ReadList("4", []int{874, 877, 883}))
	want := "T42(ok): append(3, 837), r(4, [874 877 883])"
	if got := o.String(); got != want {
		t.Errorf("Op.String() = %q, want %q", got, want)
	}
	if o.Name() != "T42" {
		t.Errorf("Name() = %q", o.Name())
	}
}

func TestFormatList(t *testing.T) {
	if got := FormatList(nil); got != "[]" {
		t.Errorf("FormatList(nil) = %q", got)
	}
	if got := FormatList([]int{1, 2, 3}); got != "[1 2 3]" {
		t.Errorf("FormatList = %q", got)
	}
}

func TestIsPrefix(t *testing.T) {
	cases := []struct {
		a, b []int
		want bool
	}{
		{nil, nil, true},
		{nil, []int{1}, true},
		{[]int{1}, []int{1, 2}, true},
		{[]int{1, 2}, []int{1, 2}, true},
		{[]int{2}, []int{1, 2}, false},
		{[]int{1, 2, 3}, []int{1, 2}, false},
	}
	for _, c := range cases {
		if got := IsPrefix(c.a, c.b); got != c.want {
			t.Errorf("IsPrefix(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestIsPrefixProperties(t *testing.T) {
	// Every prefix of a slice is a prefix; extending the longer slice
	// preserves the relation.
	prop := func(a []int, ext []int) bool {
		b := append(append([]int(nil), a...), ext...)
		return IsPrefix(a, b)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
	// A strictly longer slice is never a prefix of a shorter one.
	prop2 := func(a []int) bool {
		b := append(append([]int(nil), a...), 99)
		return !IsPrefix(b, a)
	}
	if err := quick.Check(prop2, nil); err != nil {
		t.Error(err)
	}
}
