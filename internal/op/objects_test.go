package op

import (
	"testing"
	"testing/quick"
)

// TestFigure1Semantics checks each object's write semantics against the
// table in the paper's Figure 1.
func TestFigure1Semantics(t *testing.T) {
	// Register: w(xi, a) -> (a, nil); x_init = nil.
	reg := InitVersion(KindRegister)
	if !reg.Nil {
		t.Error("register init should be nil")
	}
	reg = reg.Apply(5)
	if reg.Nil || reg.Int != 5 {
		t.Errorf("register after w(5): %v", reg)
	}
	reg = reg.Apply(9)
	if reg.Int != 9 {
		t.Errorf("register writes should blindly replace: %v", reg)
	}

	// Counter: w(xi, a) -> (xi + a, nil); x_init = 0.
	ctr := InitVersion(KindCounter)
	if ctr.Int != 0 {
		t.Error("counter init should be 0")
	}
	ctr = ctr.Apply(3).Apply(4)
	if ctr.Int != 7 {
		t.Errorf("counter after +3, +4: %v", ctr)
	}

	// Set: w(xi, a) -> (xi ∪ {a}, nil); x_init = {}.
	set := InitVersion(KindSet)
	if len(set.Elems) != 0 {
		t.Error("set init should be empty")
	}
	set = set.Apply(2).Apply(1)
	if set.String() != "{1 2}" {
		t.Errorf("set = %s", set)
	}

	// List: w([e1..en], a) -> ([e1..en, a], nil); x_init = [].
	list := InitVersion(KindList)
	list = list.Apply(1).Apply(2).Apply(3)
	if list.String() != "[1 2 3]" {
		t.Errorf("list = %s", list)
	}
}

func TestVersionEqual(t *testing.T) {
	a := InitVersion(KindSet).Apply(1).Apply(2)
	b := InitVersion(KindSet).Apply(2).Apply(1)
	if !a.Equal(b) {
		t.Error("sets should compare order-free")
	}
	la := InitVersion(KindList).Apply(1).Apply(2)
	lb := InitVersion(KindList).Apply(2).Apply(1)
	if la.Equal(lb) {
		t.Error("lists should compare in order")
	}
	if la.Equal(a) {
		t.Error("different kinds never equal")
	}
	r1, r2 := InitVersion(KindRegister), InitVersion(KindRegister)
	if !r1.Equal(r2) {
		t.Error("nil registers should be equal")
	}
	if r1.Equal(r2.Apply(0)) {
		t.Error("nil register should differ from written 0")
	}
}

func TestApplyDoesNotMutate(t *testing.T) {
	v := InitVersion(KindList).Apply(1)
	w := v.Apply(2)
	if len(v.Elems) != 1 {
		t.Errorf("Apply mutated its receiver: %v", v)
	}
	if len(w.Elems) != 2 {
		t.Errorf("Apply result wrong: %v", w)
	}
	// Appending to v again must not clobber w's storage.
	u := v.Apply(3)
	if w.Elems[1] != 2 {
		t.Errorf("aliasing: w = %v after building u = %v", w.Elems, u.Elems)
	}
}

func TestObjectKindStringsAndWriteFuns(t *testing.T) {
	cases := []struct {
		k    ObjectKind
		name string
		fun  Fun
	}{
		{KindRegister, "register", FWrite},
		{KindCounter, "counter", FIncrement},
		{KindSet, "set", FAdd},
		{KindList, "list", FAppend},
	}
	for _, c := range cases {
		if c.k.String() != c.name {
			t.Errorf("%v.String() = %q", c.k, c.k.String())
		}
		if c.k.WriteFun() != c.fun {
			t.Errorf("%v.WriteFun() = %v", c.k, c.k.WriteFun())
		}
	}
	if KindRegister.Traceable() || KindSet.Traceable() || KindCounter.Traceable() {
		t.Error("only lists are traceable")
	}
	if !KindList.Traceable() {
		t.Error("lists must be traceable")
	}
}

// TestListTraceability is the property that makes list append the paper's
// workload of choice: applying any sequence of unique appends yields a
// version whose value *is* its trace.
func TestListTraceability(t *testing.T) {
	prop := func(raw []int) bool {
		// Make elements unique by position.
		v := InitVersion(KindList)
		for i := range raw {
			v = v.Apply(i)
		}
		if len(v.Elems) != len(raw) {
			return false
		}
		for i := range raw {
			if v.Elems[i] != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestCounterCommutativity documents why counters are unrecoverable
// (§3): distinct increment orders yield identical versions.
func TestCounterCommutativity(t *testing.T) {
	a := InitVersion(KindCounter).Apply(1).Apply(2)
	b := InitVersion(KindCounter).Apply(2).Apply(1)
	if !a.Equal(b) {
		t.Error("increments must commute")
	}
}
