// Package op defines the vocabulary of observed database operations used
// throughout Elle: micro-operations (reads, writes, appends) grouped into
// transactions, and the four completion types a client can observe
// (invoke, ok, fail, info).
//
// The model follows §4.1 of Kingsbury & Alvaro, "Elle: Inferring Isolation
// Anomalies from Experimental Observations" (VLDB 2020): an observed
// operation is an operation whose versions and return values may be unknown.
// A transaction whose commit outcome is unknown (e.g. a timeout) is recorded
// with type Info; it may have committed in some interpretations and aborted
// in others.
package op

import (
	"fmt"
	"strconv"
	"strings"
)

// Fun identifies the function of a micro-operation.
type Fun uint8

const (
	// FRead observes the current version of an object and returns it.
	FRead Fun = iota
	// FWrite blindly replaces the current version of a register.
	FWrite
	// FAppend appends a unique element to the end of a list object.
	FAppend
	// FAdd adds a unique element to a set object.
	FAdd
	// FIncrement adds an integer to a counter object.
	FIncrement
)

// String returns the Jepsen-style keyword for f.
func (f Fun) String() string {
	switch f {
	case FRead:
		return "r"
	case FWrite:
		return "w"
	case FAppend:
		return "append"
	case FAdd:
		return "add"
	case FIncrement:
		return "increment"
	default:
		return fmt.Sprintf("fun(%d)", uint8(f))
	}
}

// IsWrite reports whether f mutates its object.
func (f Fun) IsWrite() bool { return f != FRead }

// Mop is a single micro-operation within a transaction: one read, write,
// append, add, or increment applied to one object (identified by Key).
//
// Exactly which result fields are meaningful depends on Fun and on the
// workload:
//
//   - FAppend/FAdd/FIncrement/FWrite use Arg as the written value.
//   - FRead of a list object stores the observed list in List; a nil List
//     means the result is unknown (e.g. on an invoke), while an empty,
//     non-nil List means the database returned the empty list.
//   - FRead of a register or counter stores the observed value in Reg;
//     RegKnown distinguishes "observed nil / zero" from "unknown".
type Mop struct {
	F   Fun
	Key string

	// Arg is the argument of a write-like micro-op: the element appended
	// or added, the value written, or the increment amount.
	Arg int

	// List is the observed value of a list or set read. nil = unknown.
	List []int

	// Reg is the observed value of a register or counter read, valid only
	// when RegKnown is true. A register read that observed the initial
	// (nil) version is encoded as RegKnown=true, RegNil=true.
	Reg      int
	RegKnown bool
	RegNil   bool
}

// Append constructs an append micro-op.
func Append(key string, elem int) Mop { return Mop{F: FAppend, Key: key, Arg: elem} }

// Add constructs a set-add micro-op.
func Add(key string, elem int) Mop { return Mop{F: FAdd, Key: key, Arg: elem} }

// Increment constructs a counter-increment micro-op.
func Increment(key string, delta int) Mop { return Mop{F: FIncrement, Key: key, Arg: delta} }

// Write constructs a register-write micro-op.
func Write(key string, v int) Mop { return Mop{F: FWrite, Key: key, Arg: v} }

// Read constructs a read micro-op with an unknown result.
func Read(key string) Mop { return Mop{F: FRead, Key: key} }

// ReadList constructs a completed list (or set) read that observed v.
// The result is never nil: an empty observation is recorded as []int{}.
func ReadList(key string, v []int) Mop {
	if v == nil {
		v = []int{}
	}
	return Mop{F: FRead, Key: key, List: v}
}

// ReadReg constructs a completed register read that observed v.
func ReadReg(key string, v int) Mop {
	return Mop{F: FRead, Key: key, Reg: v, RegKnown: true}
}

// ReadNil constructs a completed register read that observed the initial
// nil version.
func ReadNil(key string) Mop {
	return Mop{F: FRead, Key: key, RegKnown: true, RegNil: true}
}

// IsRead reports whether m is a read micro-op.
func (m Mop) IsRead() bool { return m.F == FRead }

// IsWrite reports whether m mutates its object.
func (m Mop) IsWrite() bool { return m.F.IsWrite() }

// ListKnown reports whether m is a list read with a known result.
func (m Mop) ListKnown() bool { return m.F == FRead && m.List != nil }

// String renders m in the paper's compact notation, e.g.
// "append(34, 5)" or "r(34, [2 1 5 4])".
func (m Mop) String() string {
	var b strings.Builder
	b.WriteString(m.F.String())
	b.WriteByte('(')
	b.WriteString(m.Key)
	switch {
	case m.F != FRead:
		b.WriteString(", ")
		b.WriteString(strconv.Itoa(m.Arg))
	case m.List != nil:
		b.WriteString(", ")
		b.WriteString(FormatList(m.List))
	case m.RegKnown && m.RegNil:
		b.WriteString(", nil")
	case m.RegKnown:
		b.WriteString(", ")
		b.WriteString(strconv.Itoa(m.Reg))
	}
	b.WriteByte(')')
	return b.String()
}

// FormatList renders a list value as "[1 2 3]".
func FormatList(v []int) string {
	var b strings.Builder
	b.WriteByte('[')
	for i, e := range v {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(strconv.Itoa(e))
	}
	b.WriteByte(']')
	return b.String()
}

// Type is the completion type of an observed operation.
type Type uint8

const (
	// Invoke records the start of a transaction; read results are unknown.
	Invoke Type = iota
	// OK records a transaction known to have committed.
	OK
	// Fail records a transaction known to have aborted.
	Fail
	// Info records a transaction with an unknown outcome: the client timed
	// out or crashed before learning whether its commit succeeded. Its
	// writes may or may not have taken effect.
	Info
)

// String returns the Jepsen-style name for t.
func (t Type) String() string {
	switch t {
	case Invoke:
		return "invoke"
	case OK:
		return "ok"
	case Fail:
		return "fail"
	case Info:
		return "info"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Op is one observed operation: a transaction attempt or its completion.
// A complete history interleaves Invoke ops with their OK/Fail/Info
// completions; a compact history contains completions only.
type Op struct {
	// Index is the op's unique, strictly increasing position in the
	// history. It doubles as the op's identity in graphs and reports.
	Index int
	// Process identifies the single-threaded logical client that executed
	// the op. A process has at most one outstanding transaction.
	Process int
	// Time is an optional wall-clock or logical timestamp in nanoseconds.
	Time int64
	// Type is the completion type.
	Type Type
	// Mops is the transaction body, in program order.
	Mops []Mop
}

// Txn constructs a compact completed op. It is the usual way to build
// histories by hand in tests and examples.
func Txn(index, process int, t Type, mops ...Mop) Op {
	return Op{Index: index, Process: process, Type: t, Mops: mops}
}

// Committed reports whether the op is known to have committed.
func (o Op) Committed() bool { return o.Type == OK }

// Aborted reports whether the op is known to have aborted.
func (o Op) Aborted() bool { return o.Type == Fail }

// Indeterminate reports whether the op's outcome is unknown.
func (o Op) Indeterminate() bool { return o.Type == Info }

// MayHaveCommitted reports whether any interpretation of the observation
// could map this op to a committed transaction.
func (o Op) MayHaveCommitted() bool { return o.Type == OK || o.Type == Info }

// WritesKey reports whether the transaction contains a write-like micro-op
// on key.
func (o Op) WritesKey(key string) bool {
	for _, m := range o.Mops {
		if m.IsWrite() && m.Key == key {
			return true
		}
	}
	return false
}

// Keys returns the distinct keys touched by the transaction, in first-use
// order.
func (o Op) Keys() []string {
	seen := make(map[string]bool, len(o.Mops))
	var keys []string
	for _, m := range o.Mops {
		if !seen[m.Key] {
			seen[m.Key] = true
			keys = append(keys, m.Key)
		}
	}
	return keys
}

// String renders the op as "T42(ok): append(3, 837), r(4, [874 877 883])".
func (o Op) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "T%d(%s): ", o.Index, o.Type)
	for i, m := range o.Mops {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(m.String())
	}
	return b.String()
}

// Name returns the short transaction label used in explanations, e.g. "T42".
func (o Op) Name() string { return "T" + strconv.Itoa(o.Index) }
