package explain

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/history"
	"repro/internal/op"
)

func fixture() (*Explainer, graph.Cycle) {
	// The TiDB §7.1 trio: T1 -rw-> T2 -ww-> T1.
	t1 := op.Txn(1, 1, op.OK,
		op.ReadList("34", []int{2, 1}), op.Append("36", 5), op.Append("34", 4))
	t2 := op.Txn(2, 2, op.OK, op.Append("34", 5))
	t3 := op.Txn(3, 3, op.OK, op.ReadList("34", []int{2, 1, 5, 4}))
	keys := history.NewInterner()
	orders := make([][]int, 1)
	orders[keys.Intern("34")] = []int{2, 1, 5, 4}
	e := &Explainer{
		Ops:        map[int]op.Op{1: t1, 2: t2, 3: t3},
		Keys:       keys,
		ListOrders: orders,
	}
	c := graph.Cycle{Steps: []graph.Step{
		{From: 1, To: 2, Via: graph.RW},
		{From: 2, To: 1, Via: graph.WW},
	}}
	return e, c
}

func TestCycleExplanationFormat(t *testing.T) {
	e, c := fixture()
	got := e.Cycle(c)
	for _, want := range []string{
		"Let:",
		"Then:",
		"T1(ok): r(34, [2 1]), append(36, 5), append(34, 4)",
		"T1 < T2, because T1 did not observe T2's append of 5 to key 34",
		"However, T2 < T1, because T1 appended 4 after T2 appended 5 to key 34: a contradiction!",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("explanation missing %q:\n%s", want, got)
		}
	}
}

func TestWRReason(t *testing.T) {
	e, _ := fixture()
	s := graph.Step{From: 2, To: 3, Via: graph.WR}
	got := e.edgeReason(s)
	if !strings.Contains(got, "T3 observed T2's append of 5 to key 34") {
		t.Errorf("wr reason = %q", got)
	}
}

func TestRegisterWRReason(t *testing.T) {
	w := op.Txn(0, 0, op.OK, op.Write("x", 7))
	r := op.Txn(1, 1, op.OK, op.ReadReg("x", 7))
	e := &Explainer{Ops: map[int]op.Op{0: w, 1: r}}
	got := e.edgeReason(graph.Step{From: 0, To: 1, Via: graph.WR})
	if !strings.Contains(got, "T1 observed T0's write of 7 to key x") {
		t.Errorf("register wr reason = %q", got)
	}
}

func TestOrderingReasons(t *testing.T) {
	a := op.Txn(0, 3, op.OK)
	b := op.Txn(1, 3, op.OK)
	e := &Explainer{Ops: map[int]op.Op{0: a, 1: b}}
	if got := e.edgeReason(graph.Step{From: 0, To: 1, Via: graph.Process}); !strings.Contains(got, "process 3 executed") {
		t.Errorf("process reason = %q", got)
	}
	if got := e.edgeReason(graph.Step{From: 0, To: 1, Via: graph.Realtime}); !strings.Contains(got, "completed before") {
		t.Errorf("realtime reason = %q", got)
	}
}

func TestFallbackReasons(t *testing.T) {
	// Ops with no identifiable witness still get generic prose.
	a := op.Txn(0, 0, op.OK)
	b := op.Txn(1, 1, op.OK)
	e := &Explainer{Ops: map[int]op.Op{0: a, 1: b}}
	cases := map[graph.Kind]string{
		graph.WR: "read a version",
		graph.RW: "overwrote",
		graph.WW: "overwrote a version",
	}
	for kind, want := range cases {
		got := e.edgeReason(graph.Step{From: 0, To: 1, Via: kind})
		if !strings.Contains(got, want) {
			t.Errorf("%v fallback = %q, want substring %q", kind, got, want)
		}
	}
}

func TestDOT(t *testing.T) {
	e, c := fixture()
	dot := e.DOT(c)
	for _, want := range []string{
		"digraph elle",
		`t1 -> t2 [label="rw"]`,
		`t2 -> t1 [label="ww"]`,
		"append(34, 5)",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestDOTEscapesQuotes(t *testing.T) {
	o := op.Txn(0, 0, op.OK, op.Append(`k"ey`, 1))
	e := &Explainer{Ops: map[int]op.Op{0: o}}
	c := graph.Cycle{Steps: []graph.Step{
		{From: 0, To: 0, Via: graph.WW},
	}}
	dot := e.DOT(c)
	if strings.Contains(dot, `k"ey`) && !strings.Contains(dot, `k\"ey`) {
		t.Errorf("unescaped quote in DOT:\n%s", dot)
	}
}

func TestUnknownNodeName(t *testing.T) {
	e := &Explainer{Ops: map[int]op.Op{}}
	if got := e.name(42); got != "T42" {
		t.Errorf("name(42) = %q", got)
	}
}

func TestRegisterRWReason(t *testing.T) {
	r := op.Txn(1, 1, op.OK, op.ReadNil("2434"))
	w := op.Txn(2, 2, op.OK, op.Write("2434", 10))
	keys := history.NewInterner()
	regOrders := make([][][2]string, 1)
	regOrders[keys.Intern("2434")] = [][2]string{{"nil", "10"}}
	e := &Explainer{
		Ops:       map[int]op.Op{1: r, 2: w},
		Keys:      keys,
		RegOrders: regOrders,
	}
	got := e.edgeReason(graph.Step{From: 1, To: 2, Via: graph.RW})
	if !strings.Contains(got, "T1 read key 2434 = nil, which T2 overwrote with 10") {
		t.Errorf("register rw reason = %q", got)
	}
}
