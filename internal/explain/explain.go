// Package explain renders anomaly witnesses as human-readable
// counterexamples, reproducing the paper's Figure 2 (a textual explanation
// of each dependency edge around a cycle and why the cycle is a
// contradiction) and Figure 3 (the same cycle as a Graphviz plot with
// wr / rw / ww / rt / process edge labels).
package explain

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/graph"
	"repro/internal/history"
	"repro/internal/op"
)

// Explainer renders cycles against the ops and version orders of one
// analysis. Version orders arrive in the analyzers' compact KeyID-
// indexed form: Keys translates ids to names, and the order slices are
// indexed by history.KeyID (entries may be nil; the slices may be
// shorter than the key space).
type Explainer struct {
	// Ops maps transaction ids to their completion ops.
	Ops map[int]op.Op
	// Keys is the history's key interner; nil when the analysis carries
	// no version orders.
	Keys *history.Interner
	// ListOrders holds inferred element orders (list-append), indexed by
	// KeyID.
	ListOrders [][]int
	// RegOrders holds the direct edges of the inferred register version
	// order, indexed by KeyID, as "u" -> "v" value strings with "nil"
	// for the initial version (rw-register and bank workloads).
	RegOrders [][][2]string

	// sortedIDs caches Keys.SortedIDs(): the interner is immutable by
	// the time an Explainer exists, and cycle rendering (parallel across
	// cycles) walks the sorted key list once per ww witness.
	sortedOnce sync.Once
	sortedIDs  []history.KeyID
}

// keyIDsByName returns every KeyID ordered by key name, computed once.
func (e *Explainer) keyIDsByName() []history.KeyID {
	e.sortedOnce.Do(func() { e.sortedIDs = e.Keys.SortedIDs() })
	return e.sortedIDs
}

// ListOrder returns the inferred element order for key, or nil if none
// was inferred.
func (e *Explainer) ListOrder(key string) []int {
	if e.Keys == nil {
		return nil
	}
	id, ok := e.Keys.ID(key)
	if !ok || int(id) >= len(e.ListOrders) {
		return nil
	}
	return e.ListOrders[id]
}

// RegOrder returns the direct version edges inferred for key, or nil.
func (e *Explainer) RegOrder(key string) [][2]string {
	if e.Keys == nil {
		return nil
	}
	id, ok := e.Keys.ID(key)
	if !ok || int(id) >= len(e.RegOrders) {
		return nil
	}
	return e.RegOrders[id]
}

// ListOrderKeys returns the keys with a non-empty inferred element
// order, sorted by name.
func (e *Explainer) ListOrderKeys() []string {
	var out []string
	if e.Keys == nil {
		return out
	}
	for _, id := range e.keyIDsByName() {
		if int(id) < len(e.ListOrders) && len(e.ListOrders[id]) > 0 {
			out = append(out, e.Keys.Key(id))
		}
	}
	return out
}

// Cycle renders a Figure 2-style explanation: the transactions involved,
// then one line per edge justifying the dependency, ending with the
// contradiction.
func (e *Explainer) Cycle(c graph.Cycle) string {
	var b strings.Builder
	b.WriteString("Let:\n")
	for _, n := range c.Nodes() {
		fmt.Fprintf(&b, "  %s\n", e.Ops[n].String())
	}
	b.WriteString("\nThen:\n")
	for i, s := range c.Steps {
		reason := e.edgeReason(s)
		if i == len(c.Steps)-1 {
			fmt.Fprintf(&b, "  - However, %s < %s, because %s: a contradiction!\n",
				e.name(s.From), e.name(s.To), reason)
		} else {
			fmt.Fprintf(&b, "  - %s < %s, because %s.\n",
				e.name(s.From), e.name(s.To), reason)
		}
	}
	return b.String()
}

func (e *Explainer) name(n int) string {
	if o, ok := e.Ops[n]; ok {
		return o.Name()
	}
	return fmt.Sprintf("T%d", n)
}

// edgeReason justifies one dependency edge in terms of the values the
// transactions read and wrote.
func (e *Explainer) edgeReason(s graph.Step) string {
	from, to := e.Ops[s.From], e.Ops[s.To]
	switch s.Via {
	case graph.WR:
		if key, elem, ok := e.wrWitness(from, to); ok {
			return fmt.Sprintf("%s observed %s's append of %d to key %s",
				to.Name(), from.Name(), elem, key)
		}
		if key, v, ok := e.wrRegWitness(from, to); ok {
			return fmt.Sprintf("%s observed %s's write of %d to key %s",
				to.Name(), from.Name(), v, key)
		}
		return fmt.Sprintf("%s read a version %s installed", to.Name(), from.Name())
	case graph.RW:
		if key, elem, ok := e.rwWitness(from, to); ok {
			return fmt.Sprintf("%s did not observe %s's append of %d to key %s",
				from.Name(), to.Name(), elem, key)
		}
		if key, prev, next, ok := e.rwRegWitness(from, to); ok {
			return fmt.Sprintf("%s read key %s = %s, which %s overwrote with %s",
				from.Name(), key, prev, to.Name(), next)
		}
		return fmt.Sprintf("%s read a version which %s overwrote", from.Name(), to.Name())
	case graph.WW:
		if key, e1, e2, ok := e.wwWitness(from, to); ok {
			return fmt.Sprintf("%s appended %d after %s appended %d to key %s",
				to.Name(), e2, from.Name(), e1, key)
		}
		if key, prev, next, ok := e.wwRegWitness(from, to); ok {
			return fmt.Sprintf("%s wrote key %s = %s, replacing %s's write of %s",
				to.Name(), key, next, from.Name(), prev)
		}
		return fmt.Sprintf("%s overwrote a version %s installed", to.Name(), from.Name())
	case graph.Process:
		return fmt.Sprintf("process %d executed %s before %s",
			from.Process, from.Name(), to.Name())
	case graph.Realtime:
		return fmt.Sprintf("%s completed before %s was invoked", from.Name(), to.Name())
	case graph.Timestamp:
		return fmt.Sprintf("the database's own timestamps say %s committed before %s began",
			from.Name(), to.Name())
	default:
		return fmt.Sprintf("%s precedes %s in the inferred version order", from.Name(), to.Name())
	}
}

// wrWitness finds a key and element proving a list (or set) wr edge:
// preferentially the final element of a read `from` appended (the
// list-append wr definition), falling back to any observed element (the
// set-add definition).
func (e *Explainer) wrWitness(from, to op.Op) (string, int, bool) {
	for _, m := range to.Mops {
		if !m.ListKnown() || len(m.List) == 0 {
			continue
		}
		last := m.List[len(m.List)-1]
		for _, w := range from.Mops {
			if w.F == op.FAppend && w.Key == m.Key && w.Arg == last {
				return m.Key, last, true
			}
		}
	}
	for _, m := range to.Mops {
		if !m.ListKnown() {
			continue
		}
		for _, elem := range m.List {
			for _, w := range from.Mops {
				if w.IsWrite() && w.F != op.FWrite && w.Key == m.Key && w.Arg == elem {
					return m.Key, elem, true
				}
			}
		}
	}
	return "", 0, false
}

func (e *Explainer) wrRegWitness(from, to op.Op) (string, int, bool) {
	for _, m := range to.Mops {
		if m.F != op.FRead || !m.RegKnown || m.RegNil {
			continue
		}
		for _, w := range from.Mops {
			if w.F == op.FWrite && w.Key == m.Key && w.Arg == m.Reg {
				return m.Key, m.Reg, true
			}
		}
	}
	return "", 0, false
}

// rwWitness finds a key and element proving an rw edge: `from` read a
// version of key k that did not yet include `to`'s append.
func (e *Explainer) rwWitness(from, to op.Op) (string, int, bool) {
	for _, m := range from.Mops {
		if !m.ListKnown() {
			continue
		}
		order := e.ListOrder(m.Key)
		if len(m.List) >= len(order) {
			continue
		}
		next := order[len(m.List)]
		for _, w := range to.Mops {
			if w.F == op.FAppend && w.Key == m.Key && w.Arg == next {
				return m.Key, next, true
			}
		}
	}
	return "", 0, false
}

// rwRegWitness proves a register rw edge: `from` read version prev of a
// key whose inferred successor next was written by `to`.
func (e *Explainer) rwRegWitness(from, to op.Op) (key, prev, next string, ok bool) {
	for _, m := range from.Mops {
		if m.F != op.FRead || !m.RegKnown {
			continue
		}
		observed := "nil"
		if !m.RegNil {
			observed = fmt.Sprintf("%d", m.Reg)
		}
		for _, edge := range e.RegOrder(m.Key) {
			if edge[0] != observed {
				continue
			}
			for _, w := range to.Mops {
				if w.F == op.FWrite && w.Key == m.Key && fmt.Sprintf("%d", w.Arg) == edge[1] {
					return m.Key, observed, edge[1], true
				}
			}
		}
	}
	return "", "", "", false
}

// wwRegWitness proves a register ww edge: an inferred version edge
// prev -> next where `from` wrote prev and `to` wrote next. Keys are
// tried in sorted order so the witness is deterministic.
func (e *Explainer) wwRegWitness(from, to op.Op) (key, prev, next string, ok bool) {
	if e.Keys == nil {
		return "", "", "", false
	}
	for _, id := range e.keyIDsByName() {
		if int(id) >= len(e.RegOrders) {
			continue
		}
		k := e.Keys.Key(id)
		for _, edge := range e.RegOrders[id] {
			if writesValue(from, k, edge[0]) && writesValue(to, k, edge[1]) {
				return k, edge[0], edge[1], true
			}
		}
	}
	return "", "", "", false
}

func writesValue(o op.Op, key, val string) bool {
	for _, m := range o.Mops {
		if m.F == op.FWrite && m.Key == key && fmt.Sprintf("%d", m.Arg) == val {
			return true
		}
	}
	return false
}

// wwWitness finds a key and adjacent elements proving a ww edge. Keys
// are tried in sorted order so the same edge always gets the same
// witness, whatever order the analyzer stored them in.
func (e *Explainer) wwWitness(from, to op.Op) (string, int, int, bool) {
	if e.Keys == nil {
		return "", 0, 0, false
	}
	for _, id := range e.keyIDsByName() {
		if int(id) >= len(e.ListOrders) {
			continue
		}
		key := e.Keys.Key(id)
		order := e.ListOrders[id]
		for i := 0; i+1 < len(order); i++ {
			e1, e2 := order[i], order[i+1]
			if appends(from, key, e1) && appends(to, key, e2) {
				return key, e1, e2, true
			}
		}
	}
	return "", 0, 0, false
}

func appends(o op.Op, key string, elem int) bool {
	for _, m := range o.Mops {
		if m.F == op.FAppend && m.Key == key && m.Arg == elem {
			return true
		}
	}
	return false
}

// DOT renders the cycle as a Graphviz digraph in the style of Figure 3:
// one node per transaction (labeled with its ops) and one arrow per
// dependency, labeled wr, rw, ww, rt, or process.
func (e *Explainer) DOT(c graph.Cycle) string {
	var b strings.Builder
	b.WriteString("digraph elle {\n")
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [shape=box, fontname=\"monospace\"];\n")
	for _, n := range c.Nodes() {
		o := e.Ops[n]
		label := strings.ReplaceAll(o.String(), `"`, `\"`)
		fmt.Fprintf(&b, "  t%d [label=\"%s\"];\n", n, label)
	}
	for _, s := range c.Steps {
		fmt.Fprintf(&b, "  t%d -> t%d [label=\"%s\"];\n", s.From, s.To, s.Via)
	}
	b.WriteString("}\n")
	return b.String()
}
