// Package explain renders anomaly witnesses as human-readable
// counterexamples, reproducing the paper's Figure 2 (a textual explanation
// of each dependency edge around a cycle and why the cycle is a
// contradiction) and Figure 3 (the same cycle as a Graphviz plot with
// wr / rw / ww / rt / process edge labels).
package explain

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"repro/internal/graph"
	"repro/internal/history"
	"repro/internal/op"
	"repro/internal/rel"
)

// Explainer renders cycles against the ops and version orders of one
// analysis. Version orders arrive in the analyzers' compact KeyID-
// indexed form: Keys translates ids to names, and the order slices are
// indexed by history.KeyID (entries may be nil; the slices may be
// shorter than the key space).
type Explainer struct {
	// Ops maps transaction ids to their completion ops.
	Ops map[int]op.Op
	// Keys is the history's key interner; nil when the analysis carries
	// no version orders.
	Keys *history.Interner
	// ListOrders holds inferred element orders (list-append), indexed by
	// KeyID.
	ListOrders [][]int
	// RegOrders holds the direct edges of the inferred register version
	// order, indexed by KeyID, as "u" -> "v" value strings with "nil"
	// for the initial version (rw-register and bank workloads).
	RegOrders [][][2]string

	// sortedIDs caches Keys.SortedIDs(): the interner is immutable by
	// the time an Explainer exists, and cycle rendering (parallel across
	// cycles) walks the sorted key list once per ww witness.
	sortedOnce sync.Once
	sortedIDs  []history.KeyID
}

// keyIDsByName returns every KeyID ordered by key name, computed once.
func (e *Explainer) keyIDsByName() []history.KeyID {
	e.sortedOnce.Do(func() { e.sortedIDs = e.Keys.SortedIDs() })
	return e.sortedIDs
}

// ListOrder returns the inferred element order for key, or nil if none
// was inferred.
func (e *Explainer) ListOrder(key string) []int {
	if e.Keys == nil {
		return nil
	}
	id, ok := e.Keys.ID(key)
	if !ok || int(id) >= len(e.ListOrders) {
		return nil
	}
	return e.ListOrders[id]
}

// RegOrder returns the direct version edges inferred for key, or nil.
func (e *Explainer) RegOrder(key string) [][2]string {
	if e.Keys == nil {
		return nil
	}
	id, ok := e.Keys.ID(key)
	if !ok || int(id) >= len(e.RegOrders) {
		return nil
	}
	return e.RegOrders[id]
}

// ListOrderKeys returns the keys with a non-empty inferred element
// order, sorted by name.
func (e *Explainer) ListOrderKeys() []string {
	var out []string
	if e.Keys == nil {
		return out
	}
	for _, id := range e.keyIDsByName() {
		if int(id) < len(e.ListOrders) && len(e.ListOrders[id]) > 0 {
			out = append(out, e.Keys.Key(id))
		}
	}
	return out
}

// Cycle renders a Figure 2-style explanation: the transactions involved,
// then one line per edge justifying the dependency, ending with the
// contradiction.
func (e *Explainer) Cycle(c graph.Cycle) string {
	var b strings.Builder
	b.WriteString("Let:\n")
	for _, n := range c.Nodes() {
		fmt.Fprintf(&b, "  %s\n", e.Ops[n].String())
	}
	b.WriteString("\nThen:\n")
	for i, s := range c.Steps {
		reason := e.edgeReason(s)
		if i == len(c.Steps)-1 {
			fmt.Fprintf(&b, "  - However, %s < %s, because %s: a contradiction!\n",
				e.name(s.From), e.name(s.To), reason)
		} else {
			fmt.Fprintf(&b, "  - %s < %s, because %s.\n",
				e.name(s.From), e.name(s.To), reason)
		}
	}
	return b.String()
}

func (e *Explainer) name(n int) string {
	if o, ok := e.Ops[n]; ok {
		return o.Name()
	}
	return fmt.Sprintf("T%d", n)
}

// edgeReason justifies one dependency edge in terms of the values the
// transactions read and wrote.
func (e *Explainer) edgeReason(s graph.Step) string {
	from, to := e.Ops[s.From], e.Ops[s.To]
	switch s.Via {
	case graph.WR:
		if key, elem, ok := e.wrWitness(from, to); ok {
			return fmt.Sprintf("%s observed %s's append of %d to key %s",
				to.Name(), from.Name(), elem, key)
		}
		if key, v, ok := e.wrRegWitness(from, to); ok {
			return fmt.Sprintf("%s observed %s's write of %d to key %s",
				to.Name(), from.Name(), v, key)
		}
		return fmt.Sprintf("%s read a version %s installed", to.Name(), from.Name())
	case graph.RW:
		if key, elem, ok := e.rwWitness(from, to); ok {
			return fmt.Sprintf("%s did not observe %s's append of %d to key %s",
				from.Name(), to.Name(), elem, key)
		}
		if key, prev, next, ok := e.rwRegWitness(from, to); ok {
			return fmt.Sprintf("%s read key %s = %s, which %s overwrote with %s",
				from.Name(), key, prev, to.Name(), next)
		}
		return fmt.Sprintf("%s read a version which %s overwrote", from.Name(), to.Name())
	case graph.WW:
		if key, e1, e2, ok := e.wwWitness(from, to); ok {
			return fmt.Sprintf("%s appended %d after %s appended %d to key %s",
				to.Name(), e2, from.Name(), e1, key)
		}
		if key, prev, next, ok := e.wwRegWitness(from, to); ok {
			return fmt.Sprintf("%s wrote key %s = %s, replacing %s's write of %s",
				to.Name(), key, next, from.Name(), prev)
		}
		return fmt.Sprintf("%s overwrote a version %s installed", to.Name(), from.Name())
	case graph.Process:
		return fmt.Sprintf("process %d executed %s before %s",
			from.Process, from.Name(), to.Name())
	case graph.Realtime:
		return fmt.Sprintf("%s completed before %s was invoked", from.Name(), to.Name())
	case graph.Timestamp:
		return fmt.Sprintf("the database's own timestamps say %s committed before %s began",
			from.Name(), to.Name())
	default:
		return fmt.Sprintf("%s precedes %s in the inferred version order", from.Name(), to.Name())
	}
}

// Witness scans are relational semijoins over internal/rel: the probe
// side streams candidate facts in the order the old nested loops
// visited them, the build side is an index over one transaction's
// writes, and the first joined row is exactly the witness the
// sequential scan produced. The probes carry every output column, and
// the indexes key on all their columns, so each join filters without
// widening the tuple.

// firstRow evaluates r just far enough to return its first tuple.
func firstRow(r rel.Relation) (rel.Tuple, bool) {
	var out rel.Tuple
	r.Each(func(t rel.Tuple) bool {
		out = t.Clone()
		return false
	})
	return out, out != nil
}

// appendIx indexes append(key, <col>) over o's list appends; the
// caller names the element column so the index binds against the
// matching probe column (e.g. a version pair's e1 vs e2).
func appendIx(o op.Op, col string) *rel.Index {
	r := rel.NewRelation([]string{"key", col}, func(yield func(rel.Tuple) bool) {
		t := make(rel.Tuple, 2)
		for _, m := range o.Mops {
			if m.F != op.FAppend {
				continue
			}
			t[0], t[1] = rel.Str(m.Key), rel.Int(m.Arg)
			if !yield(t) {
				return
			}
		}
	})
	return rel.BuildIndex(r, "key", col)
}

// setWriteIx indexes o's non-register writes (append and add mops) on
// (key, elem) — the build side of the set-add wr fallback.
func setWriteIx(o op.Op) *rel.Index {
	r := rel.NewRelation([]string{"key", "elem"}, func(yield func(rel.Tuple) bool) {
		t := make(rel.Tuple, 2)
		for _, m := range o.Mops {
			if !m.IsWrite() || m.F == op.FWrite {
				continue
			}
			t[0], t[1] = rel.Str(m.Key), rel.Int(m.Arg)
			if !yield(t) {
				return
			}
		}
	})
	return rel.BuildIndex(r, "key", "elem")
}

// regWriteIx indexes write(key, <col>) over o's register writes, the
// value rendered as a decimal string exactly as version-order edges
// store versions.
func regWriteIx(o op.Op, col string) *rel.Index {
	r := rel.NewRelation([]string{"key", col}, func(yield func(rel.Tuple) bool) {
		t := make(rel.Tuple, 2)
		for _, m := range o.Mops {
			if m.F != op.FWrite {
				continue
			}
			t[0], t[1] = rel.Str(m.Key), rel.Str(strconv.Itoa(m.Arg))
			if !yield(t) {
				return
			}
		}
	})
	return rel.BuildIndex(r, "key", col)
}

// wrWitness finds a key and element proving a list (or set) wr edge:
// preferentially the final element of a read `from` appended (the
// list-append wr definition), falling back to any observed element (the
// set-add definition).
func (e *Explainer) wrWitness(from, to op.Op) (string, int, bool) {
	finals := rel.NewRelation([]string{"key", "elem"}, func(yield func(rel.Tuple) bool) {
		t := make(rel.Tuple, 2)
		for _, m := range to.Mops {
			if !m.ListKnown() || len(m.List) == 0 {
				continue
			}
			t[0], t[1] = rel.Str(m.Key), rel.Int(m.List[len(m.List)-1])
			if !yield(t) {
				return
			}
		}
	})
	if t, ok := firstRow(finals.LookupJoin(appendIx(from, "elem"))); ok {
		return t[0].Text(), int(t[1].Num()), true
	}
	observed := rel.NewRelation([]string{"key", "elem"}, func(yield func(rel.Tuple) bool) {
		t := make(rel.Tuple, 2)
		for _, m := range to.Mops {
			if !m.ListKnown() {
				continue
			}
			for _, elem := range m.List {
				t[0], t[1] = rel.Str(m.Key), rel.Int(elem)
				if !yield(t) {
					return
				}
			}
		}
	})
	if t, ok := firstRow(observed.LookupJoin(setWriteIx(from))); ok {
		return t[0].Text(), int(t[1].Num()), true
	}
	return "", 0, false
}

func (e *Explainer) wrRegWitness(from, to op.Op) (string, int, bool) {
	reads := rel.NewRelation([]string{"key", "reg", "value"}, func(yield func(rel.Tuple) bool) {
		t := make(rel.Tuple, 3)
		for _, m := range to.Mops {
			if m.F != op.FRead || !m.RegKnown || m.RegNil {
				continue
			}
			t[0], t[1], t[2] = rel.Str(m.Key), rel.Int(m.Reg), rel.Str(strconv.Itoa(m.Reg))
			if !yield(t) {
				return
			}
		}
	})
	if t, ok := firstRow(reads.LookupJoin(regWriteIx(from, "value"))); ok {
		return t[0].Text(), int(t[1].Num()), true
	}
	return "", 0, false
}

// rwWitness finds a key and element proving an rw edge: `from` read a
// version of key k that did not yet include `to`'s append.
func (e *Explainer) rwWitness(from, to op.Op) (string, int, bool) {
	nexts := rel.NewRelation([]string{"key", "elem"}, func(yield func(rel.Tuple) bool) {
		t := make(rel.Tuple, 2)
		for _, m := range from.Mops {
			if !m.ListKnown() {
				continue
			}
			order := e.ListOrder(m.Key)
			if len(m.List) >= len(order) {
				continue
			}
			t[0], t[1] = rel.Str(m.Key), rel.Int(order[len(m.List)])
			if !yield(t) {
				return
			}
		}
	})
	if t, ok := firstRow(nexts.LookupJoin(appendIx(to, "elem"))); ok {
		return t[0].Text(), int(t[1].Num()), true
	}
	return "", 0, false
}

// rwRegWitness proves a register rw edge: `from` read version prev of a
// key whose inferred successor next was written by `to`.
func (e *Explainer) rwRegWitness(from, to op.Op) (key, prev, next string, ok bool) {
	succs := rel.NewRelation([]string{"key", "prev", "next"}, func(yield func(rel.Tuple) bool) {
		t := make(rel.Tuple, 3)
		for _, m := range from.Mops {
			if m.F != op.FRead || !m.RegKnown {
				continue
			}
			observed := "nil"
			if !m.RegNil {
				observed = strconv.Itoa(m.Reg)
			}
			for _, edge := range e.RegOrder(m.Key) {
				if edge[0] != observed {
					continue
				}
				t[0], t[1], t[2] = rel.Str(m.Key), rel.Str(observed), rel.Str(edge[1])
				if !yield(t) {
					return
				}
			}
		}
	})
	if t, found := firstRow(succs.LookupJoin(regWriteIx(to, "next"))); found {
		return t[0].Text(), t[1].Text(), t[2].Text(), true
	}
	return "", "", "", false
}

// wwRegWitness proves a register ww edge: an inferred version edge
// prev -> next where `from` wrote prev and `to` wrote next. Keys are
// tried in sorted order so the witness is deterministic.
func (e *Explainer) wwRegWitness(from, to op.Op) (key, prev, next string, ok bool) {
	if e.Keys == nil {
		return "", "", "", false
	}
	pairs := rel.NewRelation([]string{"key", "prev", "next"}, func(yield func(rel.Tuple) bool) {
		t := make(rel.Tuple, 3)
		for _, id := range e.keyIDsByName() {
			if int(id) >= len(e.RegOrders) {
				continue
			}
			k := rel.Str(e.Keys.Key(id))
			for _, edge := range e.RegOrders[id] {
				t[0], t[1], t[2] = k, rel.Str(edge[0]), rel.Str(edge[1])
				if !yield(t) {
					return
				}
			}
		}
	})
	r := pairs.LookupJoin(regWriteIx(from, "prev")).LookupJoin(regWriteIx(to, "next"))
	if t, found := firstRow(r); found {
		return t[0].Text(), t[1].Text(), t[2].Text(), true
	}
	return "", "", "", false
}

// wwWitness finds a key and adjacent elements proving a ww edge. Keys
// are tried in sorted order so the same edge always gets the same
// witness, whatever order the analyzer stored them in.
func (e *Explainer) wwWitness(from, to op.Op) (string, int, int, bool) {
	if e.Keys == nil {
		return "", 0, 0, false
	}
	pairs := rel.NewRelation([]string{"key", "e1", "e2"}, func(yield func(rel.Tuple) bool) {
		t := make(rel.Tuple, 3)
		for _, id := range e.keyIDsByName() {
			if int(id) >= len(e.ListOrders) {
				continue
			}
			key := rel.Str(e.Keys.Key(id))
			order := e.ListOrders[id]
			for i := 0; i+1 < len(order); i++ {
				t[0], t[1], t[2] = key, rel.Int(order[i]), rel.Int(order[i+1])
				if !yield(t) {
					return
				}
			}
		}
	})
	r := pairs.LookupJoin(appendIx(from, "e1")).LookupJoin(appendIx(to, "e2"))
	if t, found := firstRow(r); found {
		return t[0].Text(), int(t[1].Num()), int(t[2].Num()), true
	}
	return "", 0, 0, false
}

// DOT renders the cycle as a Graphviz digraph in the style of Figure 3:
// one node per transaction (labeled with its ops) and one arrow per
// dependency, labeled wr, rw, ww, rt, or process.
func (e *Explainer) DOT(c graph.Cycle) string {
	var b strings.Builder
	b.WriteString("digraph elle {\n")
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [shape=box, fontname=\"monospace\"];\n")
	for _, n := range c.Nodes() {
		o := e.Ops[n]
		label := strings.ReplaceAll(o.String(), `"`, `\"`)
		fmt.Fprintf(&b, "  t%d [label=\"%s\"];\n", n, label)
	}
	for _, s := range c.Steps {
		fmt.Fprintf(&b, "  t%d -> t%d [label=\"%s\"];\n", s.From, s.To, s.Via)
	}
	b.WriteString("}\n")
	return b.String()
}
