package gen

import (
	"testing"

	"repro/internal/op"
)

func TestUniqueWriteArguments(t *testing.T) {
	g := New(Config{ActiveKeys: 3, MaxWritesPerKey: 10}, 1)
	seen := map[int]bool{}
	for i := 0; i < 2000; i++ {
		for _, m := range g.Next() {
			if !m.IsWrite() {
				continue
			}
			if seen[m.Arg] {
				t.Fatalf("write argument %d repeated", m.Arg)
			}
			seen[m.Arg] = true
		}
	}
	if len(seen) == 0 {
		t.Fatal("generator produced no writes")
	}
}

func TestTxnLengthBounds(t *testing.T) {
	g := New(Config{MinOps: 2, MaxOps: 6}, 2)
	for i := 0; i < 1000; i++ {
		n := len(g.Next())
		if n < 2 || n > 6 {
			t.Fatalf("transaction length %d outside [2, 6]", n)
		}
	}
}

func TestKeyRotation(t *testing.T) {
	g := New(Config{ActiveKeys: 2, MaxWritesPerKey: 3, ReadRatio: 0.01, MinOps: 1, MaxOps: 1}, 3)
	writes := map[string]int{}
	for i := 0; i < 500; i++ {
		for _, m := range g.Next() {
			if m.IsWrite() {
				writes[m.Key]++
			}
		}
	}
	if len(writes) < 10 {
		t.Fatalf("keys never rotated: %d distinct keys", len(writes))
	}
	for k, n := range writes {
		if n > 3 {
			t.Errorf("key %s received %d writes, cap is 3", k, n)
		}
	}
}

func TestRegisterWorkload(t *testing.T) {
	g := New(Config{Workload: Register, ReadRatio: 0.3}, 4)
	sawWrite := false
	for i := 0; i < 100; i++ {
		for _, m := range g.Next() {
			if m.IsWrite() {
				sawWrite = true
				if m.F != op.FWrite {
					t.Fatalf("register workload emitted %v", m.F)
				}
			}
		}
	}
	if !sawWrite {
		t.Fatal("no writes generated")
	}
}

func TestListWorkloadEmitsAppends(t *testing.T) {
	g := New(Config{}, 5)
	for i := 0; i < 100; i++ {
		for _, m := range g.Next() {
			if m.IsWrite() && m.F != op.FAppend {
				t.Fatalf("list workload emitted %v", m.F)
			}
		}
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a, b := New(Config{}, 7), New(Config{}, 7)
	for i := 0; i < 200; i++ {
		ma, mb := a.Next(), b.Next()
		if len(ma) != len(mb) {
			t.Fatalf("lengths diverge at txn %d", i)
		}
		for j := range ma {
			if ma[j].F != mb[j].F || ma[j].Key != mb[j].Key || ma[j].Arg != mb[j].Arg {
				t.Fatalf("mop %d/%d diverges: %v vs %v", i, j, ma[j], mb[j])
			}
		}
	}
}

func TestActiveKeyCountStable(t *testing.T) {
	g := New(Config{ActiveKeys: 7, MaxWritesPerKey: 2}, 8)
	for i := 0; i < 300; i++ {
		g.Next()
		if got := len(g.Keys()); got != 7 {
			t.Fatalf("active key count drifted to %d", got)
		}
	}
}

func TestDefaults(t *testing.T) {
	g := New(Config{}, 9)
	if len(g.Keys()) != 5 {
		t.Errorf("default active keys = %d, want 5", len(g.Keys()))
	}
	for i := 0; i < 100; i++ {
		if n := len(g.Next()); n < 1 || n > 5 {
			t.Errorf("default txn length %d outside [1, 5]", n)
		}
	}
}

func TestSetWorkloadEmitsAdds(t *testing.T) {
	g := New(Config{Workload: Set}, 10)
	saw := false
	for i := 0; i < 100; i++ {
		for _, m := range g.Next() {
			if m.IsWrite() {
				saw = true
				if m.F != op.FAdd {
					t.Fatalf("set workload emitted %v", m.F)
				}
			}
		}
	}
	if !saw {
		t.Fatal("no adds generated")
	}
}

func TestCounterWorkloadEmitsIncrements(t *testing.T) {
	g := New(Config{Workload: Counter}, 11)
	saw := false
	for i := 0; i < 100; i++ {
		for _, m := range g.Next() {
			if m.IsWrite() {
				saw = true
				if m.F != op.FIncrement {
					t.Fatalf("counter workload emitted %v", m.F)
				}
				if m.Arg < 1 || m.Arg > 3 {
					t.Fatalf("increment delta %d outside [1, 3]", m.Arg)
				}
			}
		}
	}
	if !saw {
		t.Fatal("no increments generated")
	}
}

func TestNoReadAfterWrite(t *testing.T) {
	g := New(Config{NoReadAfterWrite: true, MinOps: 4, MaxOps: 8, ReadRatio: 0.5}, 12)
	for i := 0; i < 500; i++ {
		written := map[string]bool{}
		for _, m := range g.Next() {
			if m.IsWrite() {
				written[m.Key] = true
			} else if written[m.Key] {
				t.Fatalf("txn %d reads key %s after writing it", i, m.Key)
			}
		}
	}
}

func TestBankWorkloadShapes(t *testing.T) {
	g := New(Config{Workload: Bank, ActiveKeys: 4}, 9)
	accounts := map[string]bool{}
	for _, k := range g.Keys() {
		accounts[k] = true
	}
	sawTransfer, sawReadAll := false, false
	for i := 0; i < 500; i++ {
		mops := g.Next()
		writes := 0
		deltaSum := 0
		for _, m := range mops {
			if !accounts[m.Key] {
				t.Fatalf("txn %d touches unknown account %q (accounts never retire)", i, m.Key)
			}
			if m.IsWrite() {
				if m.F != op.FWrite {
					t.Fatalf("bank workload emitted %v", m.F)
				}
				writes++
				deltaSum += m.Arg
			}
		}
		switch writes {
		case 0:
			// Read-all: one read per account.
			sawReadAll = true
			if len(mops) != len(accounts) {
				t.Fatalf("txn %d reads %d of %d accounts", i, len(mops), len(accounts))
			}
		case 2:
			// Transfer: deltas conserve money and follow two reads.
			sawTransfer = true
			if deltaSum != 0 {
				t.Fatalf("txn %d deltas sum to %d, money not conserved", i, deltaSum)
			}
			if len(mops) != 4 || !mops[0].IsRead() || !mops[1].IsRead() {
				t.Fatalf("txn %d is not read-read-write-write: %v", i, mops)
			}
		default:
			t.Fatalf("txn %d has %d writes", i, writes)
		}
	}
	if !sawTransfer || !sawReadAll {
		t.Fatalf("missing shapes: transfer=%v readAll=%v", sawTransfer, sawReadAll)
	}
}
