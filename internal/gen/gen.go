// Package gen generates random transaction workloads the way the paper's
// evaluation does (§7): transactions of 1–10 micro-operations comprised of
// random reads and writes over a rotating pool of objects, with unique
// write arguments so that versions are recoverable, and a configurable
// number of writes per object before a key is retired and a fresh one
// introduced (1 write/key stresses object creation; 1024 writes/key lets
// anomalies span long periods).
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/op"
)

// Workload selects which micro-ops the generator emits.
type Workload uint8

const (
	// ListAppend emits append and list-read mops.
	ListAppend Workload = iota
	// Register emits blind-write and register-read mops.
	Register
	// Set emits unique-element add and set-read mops.
	Set
	// Counter emits small increments and counter-read mops.
	Counter
	// Bank emits transfer transactions over a fixed set of accounts —
	// read both accounts, then write both with a delta the engine
	// resolves against the balances actually read — interleaved with
	// read-all transactions observing every account, the shape whose
	// total-balance invariant makes histories self-checking.
	Bank
	// KAtomic emits single-mop transactions — one register read or one
	// blind write of a globally unique value — all over one object: the
	// shape the katomic workload's real-time atomicity analysis expects,
	// where each transaction is a single operation with an
	// invocation/completion interval.
	KAtomic
)

// Config parameterizes generation.
type Config struct {
	// Workload selects list-append (default) or register mops.
	Workload Workload
	// ActiveKeys is how many objects are live at any point in time
	// (the paper used "a handful" up to 100). Default 5.
	ActiveKeys int
	// MaxWritesPerKey retires a key after this many writes (paper: 1 to
	// 1024). Default 100, the Figure 4 setting.
	MaxWritesPerKey int
	// MinOps and MaxOps bound the mops per transaction (paper: 1–10;
	// Figure 4 used 1–5). Defaults 1 and 5.
	MinOps, MaxOps int
	// ReadRatio is the probability each mop is a read. Default 0.5.
	ReadRatio float64
	// NoReadAfterWrite suppresses reads of keys the transaction has
	// already written. Useful for workloads modeling engines whose read
	// and write paths diverge (the YugaByte campaign), where a
	// read-after-write would conflate the two paths.
	NoReadAfterWrite bool
}

func (c Config) withDefaults() Config {
	if c.ActiveKeys <= 0 {
		c.ActiveKeys = 5
	}
	if c.MaxWritesPerKey <= 0 {
		c.MaxWritesPerKey = 100
	}
	if c.MinOps <= 0 {
		c.MinOps = 1
	}
	if c.MaxOps < c.MinOps {
		c.MaxOps = c.MinOps + 4
	}
	if c.ReadRatio <= 0 || c.ReadRatio >= 1 {
		c.ReadRatio = 0.5
	}
	return c
}

// Gen produces transaction bodies. It is not safe for concurrent use.
type Gen struct {
	cfg     Config
	rng     *rand.Rand
	active  []string       // live keys
	writes  map[string]int // writes so far per live key
	nextKey int            // next fresh key id
	nextArg int            // global unique write argument
}

// New builds a generator with the given seed.
func New(cfg Config, seed int64) *Gen {
	cfg = cfg.withDefaults()
	g := &Gen{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(seed)),
		writes: map[string]int{},
	}
	for len(g.active) < cfg.ActiveKeys {
		g.addKey()
	}
	return g
}

func (g *Gen) addKey() {
	k := fmt.Sprintf("%d", g.nextKey)
	g.nextKey++
	g.active = append(g.active, k)
	g.writes[k] = 0
}

// retire replaces the key at position i with a fresh one.
func (g *Gen) retire(i int) {
	delete(g.writes, g.active[i])
	k := fmt.Sprintf("%d", g.nextKey)
	g.nextKey++
	g.active[i] = k
	g.writes[k] = 0
}

// Next returns the mops of one transaction. Write arguments are unique
// across the whole run, which is what makes versions recoverable
// (§4.2.3: "we can ensure the first criterion by picking unique values").
func (g *Gen) Next() []op.Mop {
	if g.cfg.Workload == Bank {
		return g.nextBank()
	}
	if g.cfg.Workload == KAtomic {
		return g.nextKAtomic()
	}
	n := g.cfg.MinOps + g.rng.Intn(g.cfg.MaxOps-g.cfg.MinOps+1)
	mops := make([]op.Mop, 0, n)
	written := map[string]bool{}
	for i := 0; i < n; i++ {
		ki := g.rng.Intn(len(g.active))
		key := g.active[ki]
		if g.rng.Float64() < g.cfg.ReadRatio {
			if g.cfg.NoReadAfterWrite && written[key] {
				continue
			}
			mops = append(mops, op.Read(key))
			continue
		}
		written[key] = true
		g.nextArg++
		arg := g.nextArg
		switch g.cfg.Workload {
		case Register:
			mops = append(mops, op.Write(key, arg))
		case Set:
			mops = append(mops, op.Add(key, arg))
		case Counter:
			// Counters need no unique arguments (they are unrecoverable
			// regardless, §3); small deltas keep values readable.
			mops = append(mops, op.Increment(key, 1+arg%3))
		default:
			mops = append(mops, op.Append(key, arg))
		}
		g.writes[key]++
		if g.writes[key] >= g.cfg.MaxWritesPerKey {
			g.retire(ki)
		}
	}
	return mops
}

// nextBank emits one bank transaction. With probability ReadRatio it is
// a read of every account (the invariant-checking observation); the
// rest are transfers: read the two accounts involved, then write both
// with a signed delta. Bank write arguments are deltas, not balances —
// the engine resolves each against the balance it actually read, so the
// recorded history carries real balances (see memdb.WorkloadBank).
// Accounts are the initial ActiveKeys keys and are never retired.
func (g *Gen) nextBank() []op.Mop {
	if len(g.active) < 2 || g.rng.Float64() < g.cfg.ReadRatio {
		mops := make([]op.Mop, len(g.active))
		for i, k := range g.active {
			mops[i] = op.Read(k)
		}
		return mops
	}
	fi := g.rng.Intn(len(g.active))
	ti := g.rng.Intn(len(g.active) - 1)
	if ti >= fi {
		ti++
	}
	amt := 1 + g.rng.Intn(5)
	from, to := g.active[fi], g.active[ti]
	return []op.Mop{
		op.Read(from), op.Read(to),
		op.Write(from, -amt), op.Write(to, amt),
	}
}

// nextKAtomic emits one single-operation transaction over the first
// active key: a register read with probability ReadRatio, otherwise a
// blind write of a globally unique value. One object and one mop per
// transaction keep the invocation/completion interval of the op equal
// to that of its transaction, which is what the k-atomicity analysis
// orders by; the key is never retired.
func (g *Gen) nextKAtomic() []op.Mop {
	key := g.active[0]
	if g.rng.Float64() < g.cfg.ReadRatio {
		return []op.Mop{op.Read(key)}
	}
	g.nextArg++
	return []op.Mop{op.Write(key, g.nextArg)}
}

// Keys returns the currently active keys (for tests).
func (g *Gen) Keys() []string {
	out := make([]string, len(g.active))
	copy(out, g.active)
	return out
}
