// Quickstart: check a small hand-written history for isolation anomalies.
//
// This example rebuilds the paper's Figure 2 scenario — three
// transactions over list-append objects whose reads reveal a G-single
// (read skew) cycle — runs the checker against serializability, and
// prints the same style of textual explanation and Graphviz plot the
// paper shows in Figures 2 and 3.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/op"
)

func main() {
	// Setup transactions provide recoverable writers for the elements
	// the Figure 2 transactions observe (the paper's history elides
	// them with "...").
	ops := []op.Op{
		op.Txn(0, 0, op.OK, op.Append("253", 1), op.Append("253", 3), op.Append("253", 4)),
		op.Txn(1, 0, op.OK, op.Append("255", 2), op.Append("255", 3), op.Append("255", 4), op.Append("255", 5)),
		op.Txn(2, 0, op.OK, op.Append("256", 1), op.Append("256", 2)),

		// The three transactions of Figure 2.
		op.Txn(10, 1, op.OK,
			op.Append("250", 10),
			op.ReadList("253", []int{1, 3, 4}),
			op.ReadList("255", []int{2, 3, 4, 5}),
			op.Append("256", 3)),
		op.Txn(11, 2, op.OK,
			op.Append("255", 8),
			op.ReadList("253", []int{1, 3, 4})),
		op.Txn(12, 3, op.OK,
			op.Append("256", 4),
			op.ReadList("255", []int{2, 3, 4, 5, 8}),
			op.ReadList("256", []int{1, 2, 4}),
			op.ReadList("253", []int{1, 3, 4})),

		// A later observer pinning the order of key 256: T10's append of
		// 3 followed T12's append of 4.
		op.Txn(13, 4, op.OK, op.ReadList("256", []int{1, 2, 4, 3})),
	}

	h := history.MustNew(ops)
	res := core.Check(h, core.OptsFor(core.ListAppend, consistency.Serializable))

	fmt.Print(res.Summary())
	fmt.Println()
	for _, a := range res.Anomalies {
		fmt.Printf("=== %s ===\n", a.Type)
		fmt.Println(a.Explanation)
		if len(a.Cycle.Steps) > 0 {
			fmt.Println("As Graphviz (Figure 3):")
			fmt.Println(res.Explainer.DOT(a.Cycle))
		}
	}
	fmt.Println("Models this observation may still satisfy:")
	for _, m := range res.Strongest {
		fmt.Printf("  %s\n", m)
	}
}
