// Audit: verify a database's isolation claims by generating workloads,
// recording the observed history, and checking it at every level.
//
// This example plays the role of a database tester: it runs the same
// random list-append workload against the in-memory engine configured at
// each isolation level, then asks Elle which consistency models each
// history rules out. The output is a table showing that each engine
// passes its own level and fails the stronger ones — e.g. snapshot
// isolation exhibits write skew (G2-item), which refutes serializability
// but not SI.
//
// Run with:
//
//	go run ./examples/audit
package main

import (
	"fmt"

	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/memdb"
)

func main() {
	engines := []memdb.Isolation{
		memdb.ReadCommitted,
		memdb.SnapshotIsolation,
		memdb.Serializable,
		memdb.StrictSerializable,
	}
	claims := []consistency.Model{
		consistency.ReadCommitted,
		consistency.SnapshotIsolation,
		consistency.Serializable,
		consistency.StrictSerializable,
	}

	fmt.Println("Auditing each engine against each claimed model")
	fmt.Println("(✓ = history consistent with claim, ✗ = anomalies refute it)")
	fmt.Println()
	fmt.Printf("%-22s", "engine \\ claim")
	for _, m := range claims {
		fmt.Printf("%-22s", shorten(m))
	}
	fmt.Println()

	for _, iso := range engines {
		// The same seed per engine: contention high enough to surface
		// anomalies where they're possible.
		g := gen.New(gen.Config{ActiveKeys: 4, MaxWritesPerKey: 50, MinOps: 1, MaxOps: 5}, 7)
		h := memdb.Run(memdb.RunConfig{
			Clients: 10, Txns: 2000, Isolation: iso, Source: g, Seed: 7,
		})
		fmt.Printf("%-22s", iso)
		for _, m := range claims {
			r := core.Check(h, core.OptsFor(core.ListAppend, m))
			mark := "✓"
			if !r.Valid {
				mark = "✗"
			}
			detail := ""
			if types := r.AnomalyTypes(); len(types) > 0 && !r.Valid {
				detail = fmt.Sprintf(" (%s)", types[len(types)-1])
			}
			fmt.Printf("%-22s", mark+detail)
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Println("Reading the table: a row's ✗ entries are the models the engine's")
	fmt.Println("anomalies refute; its ✓ entries are claims the observation cannot")
	fmt.Println("rule out. A correct engine is ✓ at its own level and below.")
}

func shorten(m consistency.Model) string {
	switch m {
	case consistency.SnapshotIsolation:
		return "snapshot-isolation"
	case consistency.StrictSerializable:
		return "strict-serializable"
	default:
		return string(m)
	}
}
