// Datatypes: the paper's §3 narrative as a runnable comparison.
//
// The same snapshot-isolated engine — which permits write skew — is
// tested through every registered datatype. Lists (traceable and
// recoverable) expose the G2 cycles outright; sets see them too (their
// elements are recoverable, though write-write order is not); registers
// infer only partial version orders; counters, being unrecoverable,
// cannot produce dependency cycles at all; bank histories carry their
// own invariant. This is why Elle's headline workload is list append.
//
// The lane list comes straight from the workload registry, so a newly
// registered workload joins the comparison automatically.
//
// Run with:
//
//	go run ./examples/datatypes
package main

import (
	"fmt"

	"repro/internal/anomaly"
	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/memdb"
	"repro/internal/workload"
)

func main() {
	fmt.Println("One engine (snapshot isolation, no faults), every registered datatype.")
	fmt.Println("Write skew is present; which datatype lets Elle see it?")
	fmt.Println()
	fmt.Printf("%-14s %-10s %-12s %s\n", "datatype", "G2 seen?", "SI holds?", "anomaly families")

	for _, info := range workload.All() {
		// Aggregate over seeds: anomaly incidence is probabilistic.
		sawG2 := false
		siHolds := true
		families := map[anomaly.Type]bool{}
		for seed := int64(0); seed < 8; seed++ {
			g := gen.New(gen.Config{
				Workload: info.Gen, ActiveKeys: 5, MaxWritesPerKey: 40,
			}, seed)
			h := memdb.Run(memdb.RunConfig{
				Clients: 10, Txns: 800,
				Isolation: memdb.SnapshotIsolation,
				Source:    g, Seed: seed, Workload: info.DB,
			})
			r := core.Check(h, core.OptsFor(core.Workload(info.Name), consistency.SnapshotIsolation))
			for _, typ := range r.AnomalyTypes() {
				families[typ] = true
				if typ == anomaly.G2Item {
					sawG2 = true
				}
			}
			if !r.Valid {
				siHolds = false
			}
		}
		var names []string
		for typ := range families {
			names = append(names, string(typ))
		}
		if len(names) == 0 {
			names = []string{"(none)"}
		}
		fmt.Printf("%-14s %-10v %-12v %v\n", info.Name, sawG2, siHolds, names)
	}

	fmt.Println()
	fmt.Println("Expected: lists and sets surface G2-item (write skew), which SI")
	fmt.Println("permits, so the SI claim still holds everywhere; counters surface")
	fmt.Println("nothing — increments are unrecoverable (§3), so no dependency")
	fmt.Println("graph, and no cycles, can be inferred from them.")
}
