// Registers: find anomalies in a database that only offers read-write
// registers, the way the paper's Dgraph case study does (§7.4).
//
// Blind register writes destroy version history, so Elle infers partial
// version orders from the initial state, from writes-follow-reads within
// a transaction, and — because this database claims per-key
// linearizability — from the real-time order of operations. The engine
// here injects Dgraph's shard-migration bug: reads sometimes return nil
// for keys written long ago. Elle reports the resulting cyclic version
// orders (and discards them, to avoid trivial cycles), then finds genuine
// read skew among the survivors.
//
// Run with:
//
//	go run ./examples/registers
package main

import (
	"fmt"

	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/memdb"
)

func main() {
	g := gen.New(gen.Config{
		Workload:        gen.Register,
		ActiveKeys:      5,
		MaxWritesPerKey: 40,
		MinOps:          1,
		MaxOps:          4,
	}, 11)
	h := memdb.Run(memdb.RunConfig{
		Clients:   10,
		Txns:      1500,
		Isolation: memdb.SnapshotIsolation,
		Faults:    memdb.Faults{NilReadProb: 0.08},
		Source:    g,
		Seed:      11,
		Register:  true,
	})

	opts := core.OptsFor(core.Register, consistency.SnapshotIsolation)
	// Dgraph claims per-key linearizability on top of SI, so real-time
	// version inference is sound against its claims.
	opts.LinearizableKeys = true
	res := core.Check(h, opts)

	fmt.Print(res.Summary())
	fmt.Println()

	// Group the findings the way §7.4 reports them.
	byType := map[string]int{}
	for _, a := range res.Anomalies {
		byType[string(a.Type)]++
	}
	fmt.Println("Findings:")
	for _, typ := range []string{"internal", "cyclic-version-order", "G-single", "G2-item"} {
		if n := byType[typ]; n > 0 {
			fmt.Printf("  %-22s × %d\n", typ, n)
		}
	}
	fmt.Println()

	// Show one worked example of each interesting family.
	shown := map[string]bool{}
	for _, a := range res.Anomalies {
		key := string(a.Type)
		if shown[key] {
			continue
		}
		shown[key] = true
		fmt.Printf("=== example %s ===\n", a.Type)
		fmt.Println(a.Explanation)
		fmt.Println()
	}
}
