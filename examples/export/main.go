// Export: generate a history with injected faults, write it as JSON
// lines, and re-check it through the same decoder the elle CLI uses —
// the round trip a real test harness performs when it records histories
// on one machine and analyzes them on another.
//
// Run with:
//
//	go run ./examples/export            # writes history.jsonl, then checks it
//	go run ./examples/export | head     # inspect the wire format
package main

import (
	"bytes"
	"fmt"
	"os"

	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/jsonhist"
	"repro/internal/memdb"
)

func main() {
	// Record: a snapshot-isolated run with TiDB-style retries.
	g := gen.New(gen.Config{ActiveKeys: 4, MaxWritesPerKey: 50}, 5)
	h := memdb.Run(memdb.RunConfig{
		Clients:   8,
		Txns:      1000,
		Isolation: memdb.SnapshotIsolation,
		Faults:    memdb.Faults{RetryStompProb: 0.4, RetryRebaseProb: 1},
		Source:    g,
		Seed:      5,
	})

	// Export to JSON lines.
	var buf bytes.Buffer
	if err := jsonhist.Encode(&buf, h); err != nil {
		fmt.Fprintln(os.Stderr, "encode:", err)
		os.Exit(1)
	}
	const path = "history.jsonl"
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "write:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d ops (%d bytes) to %s\n", h.Len(), buf.Len(), path)

	// Re-import and check, exactly as `elle -model snapshot-isolation
	// history.jsonl` would.
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "open:", err)
		os.Exit(1)
	}
	defer f.Close()
	back, err := jsonhist.Decode(f, false)
	if err != nil {
		fmt.Fprintln(os.Stderr, "decode:", err)
		os.Exit(1)
	}
	res := core.Check(back, core.OptsFor(core.ListAppend, consistency.SnapshotIsolation))
	fmt.Println()
	fmt.Print(res.Summary())

	// A retried-writes database cannot be snapshot isolated; show the
	// first cycle witness as proof.
	for _, a := range res.Anomalies {
		if len(a.Cycle.Steps) > 0 {
			fmt.Println()
			fmt.Printf("=== first cycle witness: %s ===\n", a.Type)
			fmt.Println(a.Explanation)
			break
		}
	}
}
