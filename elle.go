// Package repro is the public API of this reproduction of Elle, the
// black-box transactional isolation checker of Kingsbury & Alvaro,
// "Elle: Inferring Isolation Anomalies from Experimental Observations"
// (VLDB 2020).
//
// The package re-exports the library's stable surface from the internal
// implementation packages, so downstream users interact with one import:
//
//	import elle "repro"
//
//	h := elle.MustHistory([]elle.Op{
//	    elle.Txn(0, 0, elle.OK, elle.Append("x", 1)),
//	    elle.Txn(1, 1, elle.OK, elle.ReadList("x", []int{1})),
//	})
//	res := elle.Check(h, elle.OptsFor(elle.ListAppend, elle.Serializable))
//	fmt.Print(res.Summary())
//
// The five building blocks:
//
//   - Histories (Op, Mop, History): observations of a database, either
//     compact (completions only) or complete (invoke/ok/fail/info pairs,
//     as a real test harness records them).
//   - Check: dependency inference + cycle search + anomaly
//     classification against a claimed consistency model. CheckStream
//     is its incremental counterpart: feed the history in chunks and
//     anomalies surface as they become provable, with a Finish result
//     byte-identical to the batch Check.
//   - Workload generation (GenConfig, NewGen) and the in-memory engine
//     (DB, Run) for producing histories to check.
//   - The search baseline (CheckSerializable) used by the paper's
//     Figure 4 comparison.
//   - Serialization: DecodeHistory / EncodeHistory in a JSON-lines
//     format close to Jepsen's, and DecodeHistoryBinary /
//     EncodeHistoryBinary in ellebin, the compact length-prefixed
//     binary format (docs/FORMATS.md) the CLI tools auto-detect.
//
// Checking is parallel by default: Check shards per-key dependency
// inference, per-transaction anomaly checks, and per-SCC cycle search
// across one worker per CPU, and DecodeHistoryWith parses JSON lines the
// same way. Set CheckOpts.Parallelism (or DecodeHistoryOpts.Parallelism)
// to 1 for a fully sequential run; results are byte-identical at every
// setting.
package repro

import (
	"io"
	"time"

	"repro/internal/anomaly"
	"repro/internal/binhist"
	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/history"
	"repro/internal/jsonhist"
	"repro/internal/memdb"
	"repro/internal/op"
	"repro/internal/serialcheck"
	"repro/internal/service"
	"repro/internal/workload"
)

// Micro-operations and operations.
type (
	// Mop is one micro-operation: a read, write, append, add, or
	// increment on a single object.
	Mop = op.Mop
	// Op is one observed operation: a transaction attempt or completion.
	Op = op.Op
	// OpType is the completion type of an observed operation.
	OpType = op.Type
	// History is a validated observation.
	History = history.History
)

// Completion types.
const (
	Invoke = op.Invoke
	OK     = op.OK
	Fail   = op.Fail
	Info   = op.Info
)

// Micro-op constructors.
var (
	Append    = op.Append
	Add       = op.Add
	Increment = op.Increment
	Write     = op.Write
	Read      = op.Read
	ReadList  = op.ReadList
	ReadReg   = op.ReadReg
	ReadNil   = op.ReadNil
	Txn       = op.Txn
)

// NewHistory validates ops and builds a History; MustHistory panics on
// error. NewHistoryBuilder incrementally assembles complete histories.
var (
	NewHistory        = history.New
	MustHistory       = history.MustNew
	NewHistoryBuilder = history.NewBuilder
)

// Checking.
type (
	// CheckOpts configures a check; see OptsFor for model-appropriate
	// defaults.
	CheckOpts = core.Opts
	// CheckResult is a check's outcome: verdict, anomalies with
	// explanations, and the violated / surviving consistency models.
	CheckResult = core.CheckResult
	// Workload selects the dependency-inference strategy.
	Workload = core.Workload
	// Anomaly is one detected phenomenon.
	Anomaly = anomaly.Anomaly
	// AnomalyType names an anomaly family (G0, G1a, G-single, ...).
	AnomalyType = anomaly.Type
	// Model is an isolation / consistency model.
	Model = consistency.Model
)

// Workloads. These are the built-in registered names; Workloads()
// returns the full live set, including any analyzer registered outside
// this list.
const (
	ListAppend = core.ListAppend
	Register   = core.Register
	SetAdd     = core.SetAdd
	Counter    = core.Counter
	Bank       = core.Bank
	KAtomic    = core.KAtomic
)

// Workloads returns the name of every registered workload analyzer,
// sorted. The set is derived from the internal workload registry, so it
// always matches what Check accepts.
func Workloads() []Workload {
	names := workload.Names()
	out := make([]Workload, len(names))
	for i, n := range names {
		out[i] = Workload(n)
	}
	return out
}

// Models, weakest to strongest.
const (
	ReadUncommitted     = consistency.ReadUncommitted
	ReadCommitted       = consistency.ReadCommitted
	RepeatableRead      = consistency.RepeatableRead
	SnapshotIsolation   = consistency.SnapshotIsolation
	Serializable        = consistency.Serializable
	StrongSessionSI     = consistency.StrongSessionSI
	StrongSessionSerial = consistency.StrongSessionSerial
	StrictSerializable  = consistency.StrictSerializable
)

// Check analyzes a history under the given options.
func Check(h *History, opts CheckOpts) *CheckResult { return core.Check(h, opts) }

// Streaming.
type (
	// Stream is an in-progress incremental check: feed the history in
	// index-ordered chunks, read provisional findings from each Delta,
	// and Finish for the definitive result — byte-identical to Check
	// over the concatenated chunks. See CheckStream.
	Stream = core.Stream
	// Delta is what one Stream.Feed returns: the anomalies the chunk
	// made provable (provisional — the final report confirms them) and
	// the running op count.
	Delta = workload.Delta
)

// CheckStream begins an incremental check: the streaming counterpart of
// Check, for histories that are still being produced — a live test run,
// a tailed log — or too large to hold before analyzing. Workloads with
// native incremental analyzers (list-append, rw-register) maintain
// per-key version orders and dependency edges across feeds and surface
// anomalies as chunks prove them; every other workload streams through
// a buffer-then-batch adapter and reports everything at Finish.
func CheckStream(opts CheckOpts) *Stream { return core.CheckStream(opts) }

// OptsFor returns the options the paper's methodology implies for
// checking workload w against claimed model m.
func OptsFor(w Workload, m Model) CheckOpts { return core.OptsFor(w, m) }

// The checking service.
type (
	// Service is the checker as a long-lived HTTP job service — the
	// engine behind cmd/elled. It implements http.Handler: jobs are
	// created, fed JSON-lines chunks, polled for provisional findings,
	// and asked for a final report that is byte-identical to a batch
	// Check (and to `elle`'s stdout) over the same history and options.
	// See docs/SERVICE.md for the endpoint reference.
	Service = service.Service
	// ServiceConfig bounds a Service: resident jobs, per-chunk body
	// bytes, the idle window after which untouched jobs are reaped, the
	// inference shard count, and the WAL directory and fsync policy.
	ServiceConfig = service.Config
	// ServiceError is the machine-readable error envelope every non-2xx
	// service response carries: {"error":{"code","message","retry_after_s"}}.
	ServiceError = service.ErrorEnvelope
)

// The service's stable error codes — the envelope's "code" field. See
// docs/SERVICE.md for the full table.
const (
	ServiceCodeBadRequest          = service.CodeBadRequest
	ServiceCodeUnknownWorkload     = service.CodeUnknownWorkload
	ServiceCodeUnknownModel        = service.CodeUnknownModel
	ServiceCodeInvalidMemoryBudget = service.CodeInvalidMemoryBudget
	ServiceCodeAtCapacity          = service.CodeAtCapacity
	ServiceCodeShardBusy           = service.CodeShardBusy
	ServiceCodeChunkTooLarge       = service.CodeChunkTooLarge
	ServiceCodeJobNotFound         = service.CodeJobNotFound
	ServiceCodeJobDone             = service.CodeJobDone
	ServiceCodeJobFailed           = service.CodeJobFailed
	ServiceCodeFormatMismatch      = service.CodeFormatMismatch
	ServiceCodeChunkRejected       = service.CodeChunkRejected
	ServiceCodeBadCursor           = service.CodeBadCursor
	ServiceCodeWALWrite            = service.CodeWALWrite
)

// NewService builds the HTTP checking service under cfg, replays any
// WAL journals in cfg.WALDir, and starts its idle reaper and inference
// shards; mount it on any http.Server and Close it when done. The zero
// ServiceConfig means 8 resident jobs, 8 MiB chunks, 10 minute idle
// reaping, one shard per CPU, and no WAL. It errors only on an unusable
// WAL configuration.
func NewService(cfg ServiceConfig) (*Service, error) { return service.New(cfg) }

// Workload generation and the in-memory engine.
type (
	// GenConfig parameterizes random transaction generation.
	GenConfig = gen.Config
	// Gen produces transaction bodies with unique write arguments.
	Gen = gen.Gen
	// DB is the in-memory MVCC engine used as the system under test.
	DB = memdb.DB
	// DBTxn is one interactive transaction against a DB.
	DBTxn = memdb.Txn
	// Isolation selects the engine's concurrency control.
	Isolation = memdb.Isolation
	// Faults configures the engine's bug injection.
	Faults = memdb.Faults
	// RunConfig drives a simulated multi-client run.
	RunConfig = memdb.RunConfig
)

// NewGen builds a generator; NewDB an engine; Run a seeded multi-client
// simulation returning the observed history.
var (
	NewGen = gen.New
	NewDB  = memdb.New
	Run    = memdb.Run
)

// Engine isolation levels.
const (
	EngineReadUncommitted    = memdb.ReadUncommitted
	EngineReadCommitted      = memdb.ReadCommitted
	EngineSnapshotIsolation  = memdb.SnapshotIsolation
	EngineSerializable       = memdb.Serializable
	EngineStrictSerializable = memdb.StrictSerializable
)

// SerialCheckResult is the baseline checker's outcome.
type SerialCheckResult = serialcheck.Result

// CheckSerializable runs the Knossos-style search baseline with the
// given time budget (zero = unbounded).
func CheckSerializable(h *History, timeout time.Duration) *SerialCheckResult {
	return serialcheck.Check(h, serialcheck.Opts{Timeout: timeout})
}

// DecodeHistory reads a JSON-lines history; register selects register
// read decoding. EncodeHistory writes one.
func DecodeHistory(r io.Reader, register bool) (*History, error) {
	return jsonhist.Decode(r, register)
}

// DecodeHistoryOpts configures DecodeHistoryWith: register read decoding
// and the parse worker count.
type DecodeHistoryOpts = jsonhist.DecodeOpts

// DecodeHistoryWith reads a JSON-lines history, streaming the input in
// chunks and parsing them across opts.Parallelism workers (<= 0 meaning
// one per CPU); the result is identical to DecodeHistory's.
func DecodeHistoryWith(r io.Reader, opts DecodeHistoryOpts) (*History, error) {
	return jsonhist.DecodeWith(r, opts)
}

// EncodeHistory writes h as JSON lines.
func EncodeHistory(w io.Writer, h *History) error { return jsonhist.Encode(w, h) }

// DecodeHistoryBinary reads an ellebin history — the compact binary
// format (docs/FORMATS.md); no register flag is needed, the format
// records each read's kind explicitly. EncodeHistoryBinary writes one.
// Decode errors from a structurally broken stream — a truncated file, a
// bad length prefix — wrap ErrBinaryFraming.
func DecodeHistoryBinary(r io.Reader) (*History, error) { return binhist.Decode(r) }

// EncodeHistoryBinary writes h as an ellebin stream.
func EncodeHistoryBinary(w io.Writer, h *History) error { return binhist.Encode(w, h) }

// ErrBinaryFraming tags every ellebin record-structure violation; test
// with errors.Is to distinguish a truncated or corrupt stream from
// ordinary I/O errors.
var ErrBinaryFraming = binhist.ErrFraming
