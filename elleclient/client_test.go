package elleclient_test

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/elleclient"
	"repro/internal/binhist"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/history"
	"repro/internal/jsonhist"
	"repro/internal/memdb"
	"repro/internal/report"
	"repro/internal/service"
)

// mkHistory generates a faulted list-append history and returns its
// JSON-lines encoding, its decoded ops, and the batch prose report —
// the byte-identity reference for every service report in this file.
func mkHistory(t *testing.T, seed int64, txns int) (jsonl string, h *history.History, batch string) {
	t.Helper()
	cfg := memdb.RunConfig{
		Clients: 10, Txns: txns, Isolation: memdb.SnapshotIsolation, Seed: seed,
		Source:   gen.New(gen.Config{Workload: gen.ListAppend, ActiveKeys: 5, MaxWritesPerKey: 40}, seed),
		Workload: memdb.WorkloadList,
		Faults:   memdb.Faults{RetryStompProb: 0.5, RetryRebaseProb: 1},
	}
	h = memdb.Run(cfg)
	var buf bytes.Buffer
	if err := jsonhist.Encode(&buf, h); err != nil {
		t.Fatal(err)
	}
	var rep bytes.Buffer
	report.Prose(&rep, core.Check(h, core.OptsFor(core.ListAppend, "serializable")), report.ProseOpts{})
	return buf.String(), h, rep.String()
}

// lineChunks splits a JSON-lines history into chunks of n lines.
func lineChunks(jsonl string, n int) [][]byte {
	lines := strings.SplitAfter(strings.TrimSuffix(jsonl, "\n"), "\n")
	var chunks [][]byte
	for i := 0; i < len(lines); i += n {
		end := min(i+n, len(lines))
		chunks = append(chunks, []byte(strings.Join(lines[i:end], "")))
	}
	return chunks
}

// byteChunks splits a byte stream into n-byte chunks, deliberately
// ignoring record boundaries.
func byteChunks(raw []byte, n int) [][]byte {
	var chunks [][]byte
	for i := 0; i < len(raw); i += n {
		chunks = append(chunks, raw[i:min(i+n, len(raw))])
	}
	return chunks
}

func newServer(t *testing.T, cfg service.Config) (*httptest.Server, *elleclient.Client) {
	t.Helper()
	svc, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc)
	t.Cleanup(func() { srv.Close(); svc.Close() })
	return srv, elleclient.New(srv.URL)
}

// TestClientLifecycle drives one job end to end through the typed
// client — create, chunked feed, status, report, list, cancel — and
// asserts the report is byte-identical to batch.
func TestClientLifecycle(t *testing.T) {
	ctx := context.Background()
	jsonl, _, batch := mkHistory(t, 41, 150)
	_, c := newServer(t, service.Config{})

	job, err := c.Create(ctx, elleclient.CreateRequest{
		Workload: "list-append", Model: "serializable", Parallelism: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if job.State != "accepting" || job.CreatedAt.IsZero() {
		t.Fatalf("created job: %+v", job)
	}

	chunks := lineChunks(jsonl, 40)
	for i, chunk := range chunks {
		d, err := c.Feed(ctx, job.ID, chunk)
		if err != nil {
			t.Fatalf("chunk %d: %v", i, err)
		}
		if d.Chunks != i+1 {
			t.Fatalf("chunk %d: server counts %d accepted", i, d.Chunks)
		}
	}

	st, err := c.Status(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Chunks != len(chunks) || st.Ops == 0 {
		t.Fatalf("status: %+v", st)
	}

	rep, err := c.Report(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if string(rep.Text) != batch {
		t.Fatalf("report diverges from batch:\n--- batch ---\n%s\n--- client ---\n%s", batch, rep.Text)
	}
	if rep.Valid {
		t.Fatal("faulted history reported valid")
	}

	jobs, _, err := c.List(ctx, elleclient.ListOpts{State: "done"})
	if err != nil || len(jobs) != 1 || jobs[0].ID != job.ID {
		t.Fatalf("list done: %v, %v", jobs, err)
	}

	if err := c.Cancel(ctx, job.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Status(ctx, job.ID); !elleclient.IsCode(err, "job_not_found") {
		t.Fatalf("status after cancel: %v", err)
	}
}

// TestClientBinaryFeed uploads the same history as ellebin, split at
// arbitrary byte offsets, and expects the identical report.
func TestClientBinaryFeed(t *testing.T) {
	ctx := context.Background()
	_, h, batch := mkHistory(t, 42, 150)
	_, c := newServer(t, service.Config{})

	var bin bytes.Buffer
	if err := binhist.Encode(&bin, h); err != nil {
		t.Fatal(err)
	}

	job, err := c.Create(ctx, elleclient.CreateRequest{
		Workload: "list-append", Model: "serializable", Parallelism: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, chunk := range byteChunks(bin.Bytes(), 777) {
		if _, err := c.FeedBinary(ctx, job.ID, chunk); err != nil {
			t.Fatalf("binary chunk %d: %v", i, err)
		}
	}
	rep, err := c.Report(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if string(rep.Text) != batch {
		t.Fatalf("binary-fed report diverges from batch")
	}
}

// TestClientTypedErrors pins the envelope-to-APIError mapping for the
// main refusal paths: stable codes, not message matching.
func TestClientTypedErrors(t *testing.T) {
	ctx := context.Background()
	_, c := newServer(t, service.Config{MaxChunkBytes: 256})

	if _, err := c.Create(ctx, elleclient.CreateRequest{Workload: "nope"}); !elleclient.IsCode(err, "unknown_workload") {
		t.Errorf("unknown workload: %v", err)
	}
	if _, err := c.Create(ctx, elleclient.CreateRequest{Model: "nope"}); !elleclient.IsCode(err, "unknown_model") {
		t.Errorf("unknown model: %v", err)
	}
	if _, err := c.Create(ctx, elleclient.CreateRequest{MemoryBudget: -1}); !elleclient.IsCode(err, "invalid_memory_budget") {
		t.Errorf("negative budget: %v", err)
	}
	if _, err := c.Status(ctx, "j999"); !elleclient.IsCode(err, "job_not_found") {
		t.Errorf("unknown job: %v", err)
	}

	job, err := c.Create(ctx, elleclient.CreateRequest{Model: "read-committed", Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte(`{"index":0,"type":"ok","process":0,"value":[["append","x",1]]}`+"\n"), 10)
	if _, err := c.Feed(ctx, job.ID, big); !elleclient.IsCode(err, "chunk_too_large") {
		t.Errorf("oversized chunk: %v", err)
	}
	line := []byte(`{"index":0,"type":"ok","process":0,"value":[["append","x",1]]}` + "\n")
	if _, err := c.Feed(ctx, job.ID, line); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FeedBinary(ctx, job.ID, []byte{0xEB}); !elleclient.IsCode(err, "format_mismatch") {
		t.Errorf("mixed formats: %v", err)
	}

	bad, err := c.Create(ctx, elleclient.CreateRequest{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Feed(ctx, bad.ID, []byte("not json\n")); !elleclient.IsCode(err, "chunk_rejected") {
		t.Errorf("malformed chunk: %v", err)
	}
	if _, err := c.Feed(ctx, bad.ID, line); !elleclient.IsCode(err, "job_failed") {
		t.Errorf("chunk to failed job: %v", err)
	}
	if _, err := c.Report(ctx, bad.ID); !elleclient.IsCode(err, "job_failed") {
		t.Errorf("report of failed job: %v", err)
	}

	if _, _, err := c.List(ctx, elleclient.ListOpts{Next: "zzz"}); !elleclient.IsCode(err, "bad_cursor") {
		t.Errorf("bad cursor: %v", err)
	}
}

// TestClientRetryBackoff: the client absorbs 429s — honoring
// Retry-After, capped by MaxBackoff — and the call succeeds once the
// server relents.
func TestClientRetryBackoff(t *testing.T) {
	var mu sync.Mutex
	attempts := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		attempts++
		n := attempts
		mu.Unlock()
		if n <= 2 {
			w.Header().Set("Retry-After", "30") // capped by MaxBackoff below
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":{"code":"shard_busy","message":"busy","retry_after_s":30}}`)
			return
		}
		fmt.Fprint(w, `{"ops":1,"chunks":1}`)
	}))
	defer srv.Close()

	c := elleclient.New(srv.URL)
	c.MaxBackoff = 10 * time.Millisecond
	start := time.Now()
	d, err := c.Feed(context.Background(), "j1", []byte("x\n"))
	if err != nil {
		t.Fatal(err)
	}
	if d.Ops != 1 || attempts != 3 {
		t.Fatalf("delta %+v after %d attempts", d, attempts)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Retry-After was not capped: %v", elapsed)
	}

	// With retries disabled the refusal surfaces as a typed error.
	mu.Lock()
	attempts = 0
	mu.Unlock()
	c.RetryLimit = -1
	if _, err := c.Feed(context.Background(), "j1", []byte("x\n")); !elleclient.IsCode(err, "shard_busy") {
		t.Fatalf("want typed shard_busy, got %v", err)
	}
}

// TestClientCrashResume is the end-to-end crash test: feed part of a
// stream to a WAL-backed service, kill it mid-stream (with a torn
// trailing record, as a real kill -9 leaves), restart on the same WAL
// directory, resume through the client, and demand a report
// byte-identical to batch.
func TestClientCrashResume(t *testing.T) {
	for _, tc := range []struct {
		name   string
		binary bool
	}{{"json", false}, {"binary", true}} {
		t.Run(tc.name, func(t *testing.T) {
			ctx := context.Background()
			jsonl, h, batch := mkHistory(t, 77, 200)
			cfg := service.Config{WALDir: t.TempDir(), SpillDir: t.TempDir()}

			var chunks [][]byte
			if tc.binary {
				var bin bytes.Buffer
				if err := binhist.Encode(&bin, h); err != nil {
					t.Fatal(err)
				}
				chunks = byteChunks(bin.Bytes(), 1000)
			} else {
				chunks = lineChunks(jsonl, 25)
			}
			feed := func(c *elleclient.Client, id string, chunk []byte) error {
				var err error
				if tc.binary {
					_, err = c.FeedBinary(ctx, id, chunk)
				} else {
					_, err = c.Feed(ctx, id, chunk)
				}
				return err
			}

			// First life: create the job and feed half the stream.
			svc1, err := service.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			srv1 := httptest.NewServer(svc1)
			c1 := elleclient.New(srv1.URL)
			job, err := c1.Create(ctx, elleclient.CreateRequest{
				Workload: "list-append", Model: "serializable", Parallelism: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			fed := len(chunks) / 2
			for i := 0; i < fed; i++ {
				if err := feed(c1, job.ID, chunks[i]); err != nil {
					t.Fatalf("chunk %d: %v", i, err)
				}
			}
			srv1.Close()
			svc1.Close()

			// The kill: tear the journal's trailing record mid-frame, as a
			// crash between write and ack would. Replay must keep the fed-1
			// intact chunks and drop the torn one.
			walPath := filepath.Join(cfg.WALDir, job.ID+".wal")
			raw, err := os.ReadFile(walPath)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(walPath, raw[:len(raw)-3], 0o644); err != nil {
				t.Fatal(err)
			}

			// Second life: replay, resume, finish, report.
			svc2, err := service.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			srv2 := httptest.NewServer(svc2)
			t.Cleanup(func() { srv2.Close(); svc2.Close() })
			c2 := elleclient.New(srv2.URL)

			st, err := c2.Status(ctx, job.ID)
			if err != nil {
				t.Fatalf("job did not survive the restart: %v", err)
			}
			if !st.Resumed || st.State != "accepting" {
				t.Fatalf("replayed status: %+v", st)
			}
			if st.Chunks != fed-1 {
				t.Fatalf("replay preserved %d chunks, want %d (torn record dropped)", st.Chunks, fed-1)
			}

			resent, err := c2.Resume(ctx, job.ID, chunks, tc.binary)
			if err != nil {
				t.Fatal(err)
			}
			if resent != len(chunks)-(fed-1) {
				t.Fatalf("resume re-sent %d chunks, want %d", resent, len(chunks)-(fed-1))
			}

			rep, err := c2.Report(ctx, job.ID)
			if err != nil {
				t.Fatal(err)
			}
			if string(rep.Text) != batch {
				t.Fatalf("resumed report diverges from batch:\n--- batch ---\n%s\n--- resumed ---\n%s",
					batch, rep.Text)
			}
		})
	}
}
