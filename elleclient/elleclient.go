// Package elleclient is the typed Go client for elled, the HTTP
// checking service (internal/service, docs/SERVICE.md). It wraps the
// v1 wire protocol — create a job, feed history chunks (JSON lines or
// ellebin), poll status, fetch the report, cancel — in methods that
// return Go values and typed errors instead of raw responses:
//
//	c := elleclient.New("http://127.0.0.1:8866")
//	job, err := c.Create(ctx, elleclient.CreateRequest{Workload: "bank"})
//	_, err = c.Feed(ctx, job.ID, chunk)           // JSON lines
//	rep, err := c.Report(ctx, job.ID)             // byte-identical to `elle`
//
// Backpressure is handled inside the client: a 429 (at_capacity when
// creating, shard_busy when feeding) is retried with capped backoff,
// honoring the server's Retry-After. Both refusals mean "nothing
// happened" — the job was not created, the chunk was not ingested — so
// the retry is always safe. Every other non-2xx surfaces as an *APIError
// carrying the service's stable error code (elle.ServiceCode*), so
// callers branch on err.Code, not on message text.
//
// The client also implements the resume protocol for WAL-backed
// servers: the service journals every acked chunk, so after a crash and
// restart the job's status reports how many chunks survived. Resume
// compares that count against what the caller sent and re-feeds only
// the difference. See docs/SERVICE.md, "Crash resume".
package elleclient

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// Client speaks elled's v1 API. The zero retry fields mean: up to 8
// retries per call on 429, each sleep capped at 2 seconds.
type Client struct {
	base string
	// HTTPClient is the transport; http.DefaultClient when nil.
	HTTPClient *http.Client
	// RetryLimit caps how many times one call retries a 429 before
	// surfacing it as an error. 0 means 8; negative disables retries.
	RetryLimit int
	// MaxBackoff caps each retry sleep, whatever Retry-After asks for.
	// 0 means 2 seconds.
	MaxBackoff time.Duration
}

// New returns a client for the service at base (e.g.
// "http://127.0.0.1:8866").
func New(base string) *Client {
	return &Client{base: strings.TrimSuffix(base, "/")}
}

// APIError is one service error envelope plus the HTTP status it rode
// in on. Code is one of the service's stable snake_case codes
// (docs/SERVICE.md lists them; the elle facade exports them as
// ServiceCode* constants).
type APIError struct {
	Status      int
	Code        string
	Message     string
	RetryAfterS int
}

func (e *APIError) Error() string {
	return fmt.Sprintf("elled: %s (%s, HTTP %d)", e.Message, e.Code, e.Status)
}

// IsCode reports whether err is (or wraps) an *APIError with the given
// code.
func IsCode(err error, code string) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Code == code
}

// CreateRequest parameterizes a job, mirroring POST /v1/jobs. Zero
// values take the server's defaults (list-append, strict-serializable,
// one worker per CPU, unbounded memory).
type CreateRequest struct {
	Workload     string `json:"workload,omitempty"`
	Model        string `json:"model,omitempty"`
	Parallelism  int    `json:"parallelism,omitempty"`
	MemoryBudget int    `json:"memory_budget,omitempty"`
}

// Anomaly is one finding, provisional (status, chunk deltas) or final
// (report). The shape matches the service's report JSON.
type Anomaly struct {
	Type        string `json:"type"`
	Key         string `json:"key,omitempty"`
	Txns        []int  `json:"txns,omitempty"`
	Cycle       string `json:"cycle,omitempty"`
	K           int    `json:"k,omitempty"`
	Explanation string `json:"explanation,omitempty"`
}

// Memory is a budgeted job's resident/retired counters (status only).
type Memory struct {
	Budget       int    `json:"budget"`
	ResidentOps  int    `json:"resident_ops"`
	RetiredOps   int    `json:"retired_ops"`
	Segments     int    `json:"segments"`
	RetiredBytes int    `json:"retired_bytes"`
	SpilledBytes int64  `json:"spilled_bytes"`
	RetiredKeys  int    `json:"retired_keys"`
	FrozenBytes  int    `json:"frozen_bytes"`
	Degraded     string `json:"degraded"`
}

// Job is a job's status: the wire shape of GET /v1/jobs/{id}.
type Job struct {
	ID        string    `json:"id"`
	State     string    `json:"state"` // "accepting", "done", "failed"
	Workload  string    `json:"workload"`
	Model     string    `json:"model"`
	CreatedAt time.Time `json:"created_at"`
	Ops       int       `json:"ops"`
	// Chunks counts the uploads the server has accepted — the resume
	// protocol's cursor.
	Chunks    int       `json:"chunks"`
	WALBytes  int64     `json:"wal_bytes"`
	Resumed   bool      `json:"resumed"`
	Memory    *Memory   `json:"memory"`
	Anomalies []Anomaly `json:"anomalies"`
	Error     string    `json:"error"`
}

// Delta is one accepted chunk's outcome: running totals plus any
// anomalies this chunk made provable.
type Delta struct {
	Ops       int       `json:"ops"`
	Chunks    int       `json:"chunks"`
	Anomalies []Anomaly `json:"anomalies"`
}

// Report is a finalized job's report.
type Report struct {
	// Valid mirrors the X-Elle-Valid header: whether the history
	// satisfies the claimed model.
	Valid bool
	// Text is the prose rendering — byte-identical to `elle`'s stdout
	// for the same history and options.
	Text []byte
}

// ellebinContentType is the chunk Content-Type that selects the binary
// history format (docs/FORMATS.md); anything else is JSON lines.
const ellebinContentType = "application/x-ellebin"

// Create starts a job, retrying at_capacity refusals with backoff.
func (c *Client) Create(ctx context.Context, req CreateRequest) (*Job, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var job Job
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", "application/json", body, &job); err != nil {
		return nil, err
	}
	return &job, nil
}

// Feed uploads one JSON-lines chunk, retrying shard_busy refusals.
// Chunks of one job must be fed sequentially, in history order.
func (c *Client) Feed(ctx context.Context, id string, chunk []byte) (*Delta, error) {
	return c.feed(ctx, id, "application/json", chunk)
}

// FeedBinary uploads one ellebin chunk; chunks may split records at
// arbitrary byte offsets — the server carries decode state across them.
func (c *Client) FeedBinary(ctx context.Context, id string, chunk []byte) (*Delta, error) {
	return c.feed(ctx, id, ellebinContentType, chunk)
}

func (c *Client) feed(ctx context.Context, id, contentType string, chunk []byte) (*Delta, error) {
	var d Delta
	if err := c.do(ctx, http.MethodPost, "/v1/jobs/"+id+"/chunks", contentType, chunk, &d); err != nil {
		return nil, err
	}
	return &d, nil
}

// Status fetches a job's current state.
func (c *Client) Status(ctx context.Context, id string) (*Job, error) {
	var job Job
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, "", nil, &job); err != nil {
		return nil, err
	}
	return &job, nil
}

// StatusJSON fetches a job's raw status document — the jobJSON wire
// shape, unfiltered by the typed Job struct.
func (c *Client) StatusJSON(ctx context.Context, id string) ([]byte, error) {
	resp, err := c.send(ctx, http.MethodGet, "/v1/jobs/"+id, "", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, envelopeError(resp.StatusCode, raw)
	}
	return raw, nil
}

// Report finalizes the job (on first call) and fetches its prose
// report.
func (c *Client) Report(ctx context.Context, id string) (*Report, error) {
	resp, err := c.send(ctx, http.MethodGet, "/v1/jobs/"+id+"/report", "", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, envelopeError(resp.StatusCode, text)
	}
	return &Report{Valid: resp.Header.Get("X-Elle-Valid") == "true", Text: text}, nil
}

// ReportJSON finalizes the job (on first call) and fetches the
// structured report.
func (c *Client) ReportJSON(ctx context.Context, id string) ([]byte, error) {
	resp, err := c.send(ctx, http.MethodGet, "/v1/jobs/"+id+"/report?format=json", "", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, envelopeError(resp.StatusCode, raw)
	}
	return raw, nil
}

// Query finalizes the job (on first call) and evaluates one
// docs/QUERY.md pattern query against its analysis, returning the
// canonical tab-separated rows — byte-identical to `elle -query` over
// the same history and options. A malformed pattern surfaces as an
// *APIError with code "bad_query" whose message carries the 1-based
// position of the parse fault.
func (c *Client) Query(ctx context.Context, id, q string) ([]byte, error) {
	resp, err := c.send(ctx, http.MethodGet, "/v1/jobs/"+id+"/query?q="+url.QueryEscape(q), "", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, envelopeError(resp.StatusCode, raw)
	}
	return raw, nil
}

// Cancel discards a job; on a WAL-backed server this deletes its
// journal too.
func (c *Client) Cancel(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, "", nil, nil)
}

// ListOpts filters and pages GET /v1/jobs.
type ListOpts struct {
	// State keeps only jobs in that state ("accepting", "done",
	// "failed"); empty keeps all.
	State string
	// Limit caps the page size; 0 means everything in one page.
	Limit int
	// Next is the cursor from the previous page's return.
	Next string
}

// List fetches one page of jobs and the cursor for the next page
// (empty on the last).
func (c *Client) List(ctx context.Context, opts ListOpts) ([]Job, string, error) {
	q := make([]string, 0, 3)
	if opts.State != "" {
		q = append(q, "state="+opts.State)
	}
	if opts.Limit > 0 {
		q = append(q, "limit="+strconv.Itoa(opts.Limit))
	}
	if opts.Next != "" {
		q = append(q, "next="+opts.Next)
	}
	path := "/v1/jobs"
	if len(q) > 0 {
		path += "?" + strings.Join(q, "&")
	}
	var page struct {
		Jobs []Job  `json:"jobs"`
		Next string `json:"next"`
	}
	if err := c.do(ctx, http.MethodGet, path, "", nil, &page); err != nil {
		return nil, "", err
	}
	return page.Jobs, page.Next, nil
}

// Resume re-feeds the tail of a chunk sequence after a server crash:
// it asks the job how many chunks the WAL preserved and uploads
// chunks[accepted:] — exactly the suffix the restarted server never
// saw. chunks must be the same sequence, in the same order, as the
// original upload (acked prefixes are journaled verbatim, so re-sent
// suffixes continue the byte stream exactly). binary selects ellebin
// uploads. It returns how many chunks were re-sent.
func (c *Client) Resume(ctx context.Context, id string, chunks [][]byte, binary bool) (int, error) {
	st, err := c.Status(ctx, id)
	if err != nil {
		return 0, err
	}
	if st.State != "accepting" {
		return 0, &APIError{Status: http.StatusConflict, Code: "job_" + st.State,
			Message: "job is " + st.State + "; nothing to resume"}
	}
	if st.Chunks > len(chunks) {
		return 0, fmt.Errorf("elleclient: server accepted %d chunks but only %d were sent — wrong job?",
			st.Chunks, len(chunks))
	}
	sent := 0
	for _, chunk := range chunks[st.Chunks:] {
		feed := c.Feed
		if binary {
			feed = c.FeedBinary
		}
		if _, err := feed(ctx, id, chunk); err != nil {
			return sent, err
		}
		sent++
	}
	return sent, nil
}

// do sends one request, retrying 429s, and decodes a JSON 2xx body
// into out when non-nil.
func (c *Client) do(ctx context.Context, method, path, contentType string, body []byte, out any) error {
	resp, err := c.send(ctx, method, path, contentType, body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return envelopeError(resp.StatusCode, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			return fmt.Errorf("elleclient: decoding %s %s response: %w", method, path, err)
		}
	}
	return nil
}

// send issues the request, absorbing 429 refusals with capped backoff.
// The returned response's status may still be any non-429 error; the
// caller maps it. 429 is always safe to retry: both at_capacity and
// shard_busy mean the server did nothing with the request.
func (c *Client) send(ctx context.Context, method, path, contentType string, body []byte) (*http.Response, error) {
	httpc := c.HTTPClient
	if httpc == nil {
		httpc = http.DefaultClient
	}
	retries := c.RetryLimit
	if retries == 0 {
		retries = 8
	}
	maxBackoff := c.MaxBackoff
	if maxBackoff <= 0 {
		maxBackoff = 2 * time.Second
	}
	backoff := 50 * time.Millisecond
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		resp, err := httpc.Do(req)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusTooManyRequests || attempt >= retries {
			return resp, nil
		}
		// Honor the server's Retry-After up to the cap; fall back to
		// exponential backoff when absent.
		sleep := backoff
		if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
			sleep = time.Duration(ra) * time.Second
		}
		if sleep > maxBackoff {
			sleep = maxBackoff
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(sleep):
		}
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// envelopeError maps a non-2xx body to an *APIError. A body that is
// not the service's envelope (a proxy's 502 page, say) still yields an
// APIError, with the raw text as the message.
func envelopeError(status int, raw []byte) error {
	var env struct {
		Err struct {
			Code        string `json:"code"`
			Message     string `json:"message"`
			RetryAfterS int    `json:"retry_after_s"`
		} `json:"error"`
	}
	if err := json.Unmarshal(raw, &env); err == nil && env.Err.Code != "" {
		return &APIError{Status: status, Code: env.Err.Code,
			Message: env.Err.Message, RetryAfterS: env.Err.RetryAfterS}
	}
	return &APIError{Status: status, Message: strings.TrimSpace(string(raw))}
}
