package repro_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	elle "repro"
)

// These tests exercise the public facade end to end, the way a
// downstream user would: build or generate a history, check it, read the
// verdict, serialize it, and run the baseline.

func TestFacadeHandBuiltHistory(t *testing.T) {
	h := elle.MustHistory([]elle.Op{
		elle.Txn(0, 0, elle.OK, elle.Append("x", 1)),
		elle.Txn(1, 1, elle.OK, elle.Append("x", 2)),
		elle.Txn(2, 2, elle.OK, elle.ReadList("x", []int{1, 2})),
	})
	res := elle.Check(h, elle.OptsFor(elle.ListAppend, elle.Serializable))
	if !res.Valid {
		t.Fatalf("clean history invalid:\n%s", res.Summary())
	}
}

func TestFacadeGenerateAndCheck(t *testing.T) {
	g := elle.NewGen(elle.GenConfig{ActiveKeys: 4, MaxWritesPerKey: 30}, 9)
	h := elle.Run(elle.RunConfig{
		Clients:   8,
		Txns:      500,
		Isolation: elle.EngineSnapshotIsolation,
		Faults:    elle.Faults{RetryStompProb: 0.5, RetryRebaseProb: 1},
		Source:    g,
		Seed:      9,
	})
	opts := elle.OptsFor(elle.ListAppend, elle.SnapshotIsolation)
	opts.DetectLostUpdates = true
	res := elle.Check(h, opts)
	if res.Valid {
		t.Fatal("retry-faulted SI engine passed its SI claim")
	}
	if len(res.Anomalies) == 0 {
		t.Fatal("no anomalies reported")
	}
	if len(res.Violated) == 0 || len(res.Strongest) == 0 {
		t.Error("model report empty")
	}
	// Every anomaly carries an explanation.
	for _, a := range res.Anomalies {
		if a.Explanation == "" {
			t.Errorf("anomaly %s has no explanation", a.Type)
		}
	}
}

func TestFacadeSerializationRoundTrip(t *testing.T) {
	g := elle.NewGen(elle.GenConfig{}, 2)
	h := elle.Run(elle.RunConfig{
		Clients: 4, Txns: 100, Isolation: elle.EngineSerializable,
		Source: g, Seed: 2,
	})
	var buf bytes.Buffer
	if err := elle.EncodeHistory(&buf, h); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"type":"invoke"`) {
		t.Error("encoded history missing invokes")
	}
	back, err := elle.DecodeHistory(&buf, false)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != h.Len() {
		t.Fatalf("round trip %d != %d ops", back.Len(), h.Len())
	}
	res := elle.Check(back, elle.OptsFor(elle.ListAppend, elle.StrictSerializable))
	if !res.Valid {
		t.Fatalf("round-tripped clean history invalid: %v", res.AnomalyTypes())
	}
}

func TestFacadeBaseline(t *testing.T) {
	h := elle.MustHistory([]elle.Op{
		elle.Txn(0, 0, elle.OK, elle.Append("x", 1)),
		elle.Txn(1, 1, elle.OK, elle.ReadList("x", []int{1})),
	})
	r := elle.CheckSerializable(h, 5*time.Second)
	if r.Outcome.String() != "serializable" {
		t.Fatalf("baseline outcome = %v", r.Outcome)
	}
}

// ExampleCheck builds the classic write-skew history by hand — two
// transactions that each read the version the other overwrites — and
// checks it against serializability.
func ExampleCheck() {
	h := elle.MustHistory([]elle.Op{
		elle.Txn(0, 0, elle.OK, elle.Append("x", 1), elle.Append("y", 1)),
		elle.Txn(1, 1, elle.OK, elle.ReadList("x", []int{1}), elle.Append("y", 2)),
		elle.Txn(2, 2, elle.OK, elle.ReadList("y", []int{1}), elle.Append("x", 2)),
		elle.Txn(3, 3, elle.OK, elle.ReadList("x", []int{1, 2}), elle.ReadList("y", []int{1, 2})),
	})
	res := elle.Check(h, elle.OptsFor(elle.ListAppend, elle.Serializable))
	fmt.Print(res.Summary())
	// Output:
	// INVALID under serializable
	//   4 ops, 4 nodes, 6 edges, 1 cyclic components
	//   anomalies: G2-item×1
	//   may satisfy: strong-session-snapshot-isolation
}

// ExampleCheckStream checks a history incrementally, the way `elle
// -follow` tails a live run: each Feed ingests a chunk and surfaces the
// anomalies it makes provable, and Finish returns the same report a
// batch Check of the whole history would. Here the first chunk carries
// an aborted append; the moment the second chunk reads it, the G1a is
// provable and appears in that feed's Delta.
func ExampleCheckStream() {
	st := elle.CheckStream(elle.OptsFor(elle.ListAppend, elle.Serializable))
	d, _ := st.Feed([]elle.Op{
		elle.Txn(0, 0, elle.Fail, elle.Append("x", 1)),
	})
	fmt.Println("after chunk 1:", len(d.Anomalies), "anomalies")
	d, _ = st.Feed([]elle.Op{
		elle.Txn(1, 1, elle.OK, elle.ReadList("x", []int{1})),
	})
	fmt.Println("after chunk 2:", len(d.Anomalies), "anomalies —", d.Anomalies[0].Type)
	res, _ := st.Finish()
	fmt.Print(res.Summary())
	// Output:
	// after chunk 1: 0 anomalies
	// after chunk 2: 1 anomalies — G1a
	// INVALID under serializable
	//   2 ops, 1 nodes, 0 edges, 0 cyclic components
	//   anomalies: G1a×1
	//   may satisfy: read-uncommitted
}

// ExampleNewService drives the checker's HTTP service in-process — the
// same session machinery as CheckStream, reached over the wire the way
// cmd/elled serves it: create a job, feed the history in chunks, fetch
// the final report.
func ExampleNewService() {
	svc, err := elle.NewService(elle.ServiceConfig{})
	if err != nil {
		panic(err)
	}
	defer svc.Close()
	srv := httptest.NewServer(svc)
	defer srv.Close()

	post := func(path, body string) string {
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			panic(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}
	var job struct {
		ID string `json:"id"`
	}
	json.Unmarshal([]byte(post("/v1/jobs", `{"model":"serializable","parallelism":1}`)), &job)

	post("/v1/jobs/"+job.ID+"/chunks",
		`{"index":0,"type":"fail","process":0,"value":[["append","x",1]]}`+"\n")
	post("/v1/jobs/"+job.ID+"/chunks",
		`{"index":1,"type":"ok","process":1,"value":[["r","x",[1]]]}`+"\n")

	resp, err := http.Get(srv.URL + "/v1/jobs/" + job.ID + "/report")
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	rep, _ := io.ReadAll(resp.Body)
	// The verdict summary — the report's anomaly sections follow it,
	// byte-identical to a batch elle.Check over the same chunks.
	fmt.Print(strings.SplitN(string(rep), "\n--- ", 2)[0])
	// Output:
	// INVALID under serializable
	//   2 ops, 1 nodes, 0 edges, 0 cyclic components
	//   anomalies: G1a×1
	//   may satisfy: read-uncommitted
}

// ExampleWorkloads lists the registered workload analyzers: the live
// set Check accepts, derived from the internal registry.
func ExampleWorkloads() {
	for _, w := range elle.Workloads() {
		fmt.Println(w)
	}
	// Output:
	// bank
	// counter
	// katomic
	// list-append
	// rw-register
	// set-add
}

// ExampleCheck_bank checks a hand-built bank history: the opening
// deposit publishes the account set and invariant total, a transfer
// moves 10, and a torn read-all observes money missing.
func ExampleCheck_bank() {
	h := elle.MustHistory([]elle.Op{
		elle.Txn(0, 0, elle.OK, elle.Write("a", 100), elle.Write("b", 100)),
		elle.Txn(1, 1, elle.OK,
			elle.ReadReg("a", 100), elle.ReadReg("b", 100),
			elle.Write("a", 90), elle.Write("b", 110)),
		elle.Txn(2, 2, elle.OK, elle.ReadReg("a", 90), elle.ReadReg("b", 100)),
	})
	res := elle.Check(h, elle.OptsFor(elle.Bank, elle.SnapshotIsolation))
	for _, a := range res.Anomalies {
		fmt.Println(a.Type)
	}
	// Output:
	// total-mismatch
	// G-single
}

// ExampleRun generates a history against the in-memory engine — a seeded,
// fully reproducible multi-client simulation — and checks it.
func ExampleRun() {
	g := elle.NewGen(elle.GenConfig{ActiveKeys: 3, MaxWritesPerKey: 20}, 1)
	h := elle.Run(elle.RunConfig{
		Clients:   4,
		Txns:      50,
		Isolation: elle.EngineSerializable,
		Source:    g,
		Seed:      1,
	})
	res := elle.Check(h, elle.OptsFor(elle.ListAppend, elle.Serializable))
	fmt.Printf("%d ops, valid: %v\n", h.Len(), res.Valid)
	// Output:
	// 100 ops, valid: true
}

// ExampleDecodeHistory reads a Jepsen-style JSON-lines observation and
// checks it, the way `cmd/elle` does for files.
func ExampleDecodeHistory() {
	const lines = `
{"index":0,"type":"invoke","process":0,"value":[["append",0,1],["r",0,null]]}
{"index":1,"type":"ok","process":0,"value":[["append",0,1],["r",0,[1]]]}
{"index":2,"type":"invoke","process":1,"value":[["r",0,null]]}
{"index":3,"type":"ok","process":1,"value":[["r",0,[1]]]}
`
	h, err := elle.DecodeHistory(strings.NewReader(lines), false)
	if err != nil {
		panic(err)
	}
	res := elle.Check(h, elle.OptsFor(elle.ListAppend, elle.StrictSerializable))
	fmt.Print(res.Summary())
	// Output:
	// OK: no anomalies rule out strict-serializable
	//   2 ops, 2 nodes, 1 edges, 0 cyclic components
}

func TestFacadeDirectEngineUse(t *testing.T) {
	db := elle.NewDB(elle.EngineSerializable, elle.Faults{}, 1)
	tx := db.Begin()
	tx.Append("k", 1)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2 := db.Begin()
	if got := tx2.ReadList("k"); len(got) != 1 || got[0] != 1 {
		t.Fatalf("read = %v", got)
	}
}
