package repro_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestDocsLinks is the docs gate CI runs: every relative markdown link
// in README.md and docs/ must point at a file that exists, and every
// in-page anchor must correspond to a heading in the target file. It
// keeps the documentation front door from rotting as files move.
func TestDocsLinks(t *testing.T) {
	files := []string{"README.md"}
	entries, err := os.ReadDir("docs")
	if err != nil {
		t.Fatalf("docs/ tree missing: %v", err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".md") {
			files = append(files, filepath.Join("docs", e.Name()))
		}
	}
	if len(files) < 3 {
		t.Fatalf("expected README.md plus at least two docs pages, found %v", files)
	}

	linkRE := regexp.MustCompile(`\]\(([^)\s]+)\)`)
	for _, file := range files {
		body, err := os.ReadFile(file)
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		for _, m := range linkRE.FindAllStringSubmatch(string(body), -1) {
			link := m[1]
			if strings.Contains(link, "://") || strings.HasPrefix(link, "mailto:") {
				continue // external; not this gate's business
			}
			target, anchor := link, ""
			if i := strings.IndexByte(link, '#'); i >= 0 {
				target, anchor = link[:i], link[i+1:]
			}
			resolved := file
			if target != "" {
				resolved = filepath.Join(filepath.Dir(file), target)
				if _, err := os.Stat(resolved); err != nil {
					t.Errorf("%s: broken link %q: %v", file, link, err)
					continue
				}
			}
			if anchor != "" && strings.HasSuffix(resolved, ".md") {
				if !hasAnchor(t, resolved, anchor) {
					t.Errorf("%s: link %q: no heading matches anchor #%s in %s",
						file, link, anchor, resolved)
				}
			}
		}
	}
}

// hasAnchor reports whether a markdown file contains a heading whose
// GitHub-style slug equals the anchor.
func hasAnchor(t *testing.T, file, anchor string) bool {
	t.Helper()
	body, err := os.ReadFile(file)
	if err != nil {
		t.Fatalf("%s: %v", file, err)
	}
	drop := regexp.MustCompile(`[^a-z0-9 \-]`)
	for _, line := range strings.Split(string(body), "\n") {
		if !strings.HasPrefix(line, "#") {
			continue
		}
		h := strings.TrimLeft(line, "#")
		h = strings.TrimSpace(h)
		h = strings.ToLower(h)
		h = drop.ReplaceAllString(h, "")
		h = strings.ReplaceAll(h, " ", "-")
		if h == anchor {
			return true
		}
	}
	return false
}
